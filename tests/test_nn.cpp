// Tests for the transformer modules: shapes, KV-cache parity with the batched
// forward, pruning surgery, LoRA algebra, and checkpoint round-trips.
#include <filesystem>

#include <gtest/gtest.h>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace sdd {
namespace {

using testing::tiny_config;

std::vector<std::int32_t> random_ids(Rng& rng, std::int64_t n, std::int64_t vocab) {
  std::vector<std::int32_t> ids(static_cast<std::size_t>(n));
  for (auto& id : ids) id = static_cast<std::int32_t>(rng.uniform_int(0, vocab - 1));
  return ids;
}

TEST(TransformerLM, ForwardShape) {
  const nn::TransformerLM model{tiny_config(), 1};
  Rng rng{3};
  const auto ids = random_ids(rng, 2 * 7, model.config().vocab_size);
  const Tensor logits = model.forward(ids, 2, 7);
  EXPECT_EQ(logits.shape(), (Shape{2, 7, model.config().vocab_size}));
}

TEST(TransformerLM, RejectsBadVocab) {
  nn::ModelConfig config = tiny_config();
  config.vocab_size = 0;
  EXPECT_THROW(nn::TransformerLM(config, 1), std::invalid_argument);
}

TEST(TransformerLM, DeterministicInit) {
  const nn::TransformerLM a{tiny_config(), 5};
  const nn::TransformerLM b{tiny_config(), 5};
  EXPECT_EQ(a.weight_hash(), b.weight_hash());
  const nn::TransformerLM c{tiny_config(), 6};
  EXPECT_NE(a.weight_hash(), c.weight_hash());
}

TEST(TransformerLM, DecodeMatchesBatchedForward) {
  // The KV-cache incremental path must reproduce the training forward exactly
  // (up to float noise): this ties the inference engine to the autograd path.
  const nn::TransformerLM model{tiny_config(4), 7};
  Rng rng{8};
  const std::int64_t seq = 9;
  const auto ids = random_ids(rng, seq, model.config().vocab_size);

  NoGradGuard no_grad;
  const Tensor logits = model.forward(ids, 1, seq);

  auto state = model.make_decode_state();
  const std::int64_t vocab = model.config().vocab_size;
  for (std::int64_t t = 0; t < seq; ++t) {
    const std::vector<float> step_logits =
        model.decode_step(state, ids[static_cast<std::size_t>(t)]);
    for (std::int64_t v = 0; v < vocab; ++v) {
      EXPECT_NEAR(step_logits[static_cast<std::size_t>(v)],
                  logits.data()[t * vocab + v], 2e-3F)
          << "mismatch at position " << t << " vocab " << v;
    }
  }
}

TEST(TransformerLM, HiddenStatesCountAndShape) {
  const nn::TransformerLM model{tiny_config(3), 2};
  Rng rng{4};
  const auto ids = random_ids(rng, 2 * 5, model.config().vocab_size);
  const auto states = model.hidden_states(ids, 2, 5);
  ASSERT_EQ(states.size(), 4U);  // embedding + 3 block outputs
  for (const auto& s : states) {
    EXPECT_EQ(s.size(), static_cast<std::size_t>(2 * 5 * model.config().d_model));
  }
}

TEST(TransformerLM, PrunedRemovesBlocksAndKeepsOthersIdentical) {
  const nn::TransformerLM model{tiny_config(5), 3};
  const nn::TransformerLM pruned = model.pruned(1, 2);
  EXPECT_EQ(pruned.n_layers(), 3);
  EXPECT_EQ(pruned.config().n_layers, 3);

  // Pruned model must equal a manual composition: blocks 0, 3, 4.
  Rng rng{5};
  const auto ids = random_ids(rng, 6, model.config().vocab_size);
  const auto full_states = model.hidden_states(ids, 1, 6);
  const auto pruned_states = pruned.hidden_states(ids, 1, 6);
  // Embedding and block 0 output are shared prefixes.
  EXPECT_EQ(full_states[0], pruned_states[0]);
  EXPECT_EQ(full_states[1], pruned_states[1]);
}

TEST(TransformerLM, PrunedValidatesRange) {
  const nn::TransformerLM model{tiny_config(4), 3};
  EXPECT_THROW(model.pruned(3, 2), std::invalid_argument);
  EXPECT_THROW(model.pruned(-1, 1), std::invalid_argument);
  EXPECT_THROW(model.pruned(0, 0), std::invalid_argument);
}

TEST(TransformerLM, CloneIsDeepCopy) {
  nn::TransformerLM model{tiny_config(), 9};
  nn::TransformerLM copy = model.clone();
  EXPECT_EQ(model.weight_hash(), copy.weight_hash());
  // Mutating the copy must not affect the original.
  copy.block(0).attention().wq().weight().data()[0] += 1.0F;
  EXPECT_NE(model.weight_hash(), copy.weight_hash());
}

TEST(TransformerLM, SaveLoadRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "sdd_test_model.bin";
  const nn::TransformerLM model{tiny_config(), 11};
  model.save(path);
  const nn::TransformerLM loaded = nn::TransformerLM::load(path);
  EXPECT_EQ(model.weight_hash(), loaded.weight_hash());
  EXPECT_EQ(loaded.config(), model.config());
  std::filesystem::remove(path);
}

TEST(TransformerLM, ParamCountMatchesManualFormula) {
  const nn::ModelConfig config = tiny_config(3);
  const nn::TransformerLM model{config, 1};
  const std::int64_t d = config.d_model;
  const std::int64_t expected = config.vocab_size * d +
                                config.n_layers * (4 * d * d + 3 * d * config.d_ff +
                                                   2 * d) +
                                d;
  EXPECT_EQ(model.param_count(), expected);
}

// ---------------------------------- LoRA ----------------------------------

TEST(Lora, AttachIsIdentityAtInit) {
  nn::TransformerLM model{tiny_config(2), 21};
  Rng rng{6};
  const auto ids = random_ids(rng, 5, model.config().vocab_size);
  NoGradGuard no_grad;
  const Tensor before = model.forward(ids, 1, 5);
  model.attach_lora(nn::LoraConfig{}, 77);
  const Tensor after = model.forward(ids, 1, 5);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

TEST(Lora, OnlyAdaptersAreTrainable) {
  nn::TransformerLM model{tiny_config(2), 22};
  model.attach_lora(nn::LoraConfig{}, 78);
  for (const nn::NamedParam& p : model.trainable_parameters()) {
    EXPECT_TRUE(p.name.find("lora") != std::string::npos) << p.name;
  }
  EXPECT_TRUE(model.has_lora());
}

TEST(Lora, MergeReproducesAdaptedForward) {
  nn::TransformerLM model{tiny_config(2), 23};
  model.attach_lora(nn::LoraConfig{.rank = 4, .alpha = 8.0F}, 79);
  // Give the adapters non-trivial values.
  Rng rng{7};
  for (const nn::NamedParam& p : model.trainable_parameters()) {
    Tensor t = p.tensor;
    for (float& v : t.data()) v = rng.gaussian_float(0.0F, 0.05F);
  }
  const auto ids = random_ids(rng, 6, model.config().vocab_size);
  NoGradGuard no_grad;
  const Tensor adapted = model.forward(ids, 1, 6);
  model.merge_lora();
  EXPECT_FALSE(model.has_lora());
  const Tensor merged = model.forward(ids, 1, 6);
  for (std::int64_t i = 0; i < adapted.numel(); ++i) {
    EXPECT_NEAR(adapted.data()[i], merged.data()[i], 2e-3F);
  }
}

TEST(Lora, SaveWithAdaptersThrows) {
  nn::TransformerLM model{tiny_config(2), 24};
  model.attach_lora(nn::LoraConfig{}, 80);
  EXPECT_THROW(model.save("/tmp/sdd_should_not_exist.bin"), std::logic_error);
}

TEST(Lora, DecodeIncludesAdapterContribution) {
  nn::TransformerLM model{tiny_config(2), 25};
  model.attach_lora(nn::LoraConfig{}, 81);
  Rng rng{9};
  for (const nn::NamedParam& p : model.trainable_parameters()) {
    Tensor t = p.tensor;
    for (float& v : t.data()) v = rng.gaussian_float(0.0F, 0.05F);
  }
  const auto ids = random_ids(rng, 5, model.config().vocab_size);
  NoGradGuard no_grad;
  const Tensor logits = model.forward(ids, 1, 5);
  auto state = model.make_decode_state();
  std::vector<float> step;
  for (std::int64_t t = 0; t < 5; ++t) {
    step = model.decode_step(state, ids[static_cast<std::size_t>(t)]);
  }
  const std::int64_t vocab = model.config().vocab_size;
  for (std::int64_t v = 0; v < vocab; ++v) {
    EXPECT_NEAR(step[static_cast<std::size_t>(v)], logits.data()[4 * vocab + v], 2e-3F);
  }
}

// --------------------------------- decode ---------------------------------

TEST(Decode, GreedyIsDeterministic) {
  const nn::TransformerLM model{tiny_config(2), 31};
  const std::vector<std::int32_t> prompt{1, 2, 3};
  nn::GenerateOptions options;
  options.max_new_tokens = 8;
  const auto a = nn::generate(model, prompt, options);
  const auto b = nn::generate(model, prompt, options);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 8U);
}

TEST(Decode, RespectsContextLimit) {
  nn::ModelConfig config = tiny_config(2);
  config.max_seq_len = 10;
  const nn::TransformerLM model{config, 32};
  const std::vector<std::int32_t> prompt{1, 2, 3, 4};
  nn::GenerateOptions options;
  options.max_new_tokens = 100;
  const auto out = nn::generate(model, prompt, options);
  EXPECT_LE(out.size(), 6U);
}

TEST(Decode, SequenceLogprobIsNegativeAndAdditive) {
  const nn::TransformerLM model{tiny_config(2), 33};
  const std::vector<std::int32_t> prompt{1, 2};
  const std::vector<std::int32_t> cont_a{3};
  const std::vector<std::int32_t> cont_ab{3, 4};
  const double lp_a = nn::sequence_logprob(model, prompt, cont_a);
  const double lp_ab = nn::sequence_logprob(model, prompt, cont_ab);
  EXPECT_LT(lp_a, 0.0);
  EXPECT_LT(lp_ab, lp_a);  // adding a token can only lower total logprob
}

TEST(Decode, TemperatureSamplingSeedControlsOutput) {
  const nn::TransformerLM model{tiny_config(2), 34};
  const std::vector<std::int32_t> prompt{1, 2, 3};
  nn::GenerateOptions options;
  options.max_new_tokens = 10;
  options.temperature = 1.0F;
  options.seed = 1;
  const auto a = nn::generate(model, prompt, options);
  const auto b = nn::generate(model, prompt, options);
  EXPECT_EQ(a, b);  // same seed, same draw
}

}  // namespace
}  // namespace sdd
