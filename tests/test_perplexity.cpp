// Tests for the perplexity diagnostic.
#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "eval/perplexity.hpp"
#include "test_helpers.hpp"
#include "train/trainer.hpp"

namespace sdd::eval {
namespace {

TEST(Perplexity, UntrainedModelNearUniform) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(2), 81};
  const data::World world{42};
  const auto sequences = data::build_calibration_set(world, 3, 24, 5);
  const PerplexityResult result = perplexity(model, sequences);
  // An untrained model should be within a factor ~2 of uniform perplexity.
  const double uniform = static_cast<double>(model.config().vocab_size);
  EXPECT_GT(result.perplexity, uniform / 3.0);
  EXPECT_LT(result.perplexity, uniform * 3.0);
  EXPECT_EQ(result.tokens, 3 * 23);
}

TEST(Perplexity, TrainingLowersIt) {
  const data::World world{42};
  data::CorpusConfig corpus;
  corpus.n_documents = 300;
  const auto stream = data::build_pretraining_stream(world, corpus);

  nn::TransformerLM model{testing::tiny_real_vocab_config(2), 82};
  const auto sequences = data::build_calibration_set(world, 3, 24, 6);
  const double before = perplexity(model, sequences).perplexity;

  train::PretrainConfig config;
  config.steps = 40;
  config.warmup_steps = 4;
  config.batch_size = 4;
  config.seq_len = 24;
  config.log_every = 0;
  train::pretrain(model, stream, config);
  const double after = perplexity(model, sequences).perplexity;
  EXPECT_LT(after, before * 0.7);
}

TEST(Perplexity, MatchesExpOfNll) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(1), 83};
  const data::World world{42};
  const auto sequences = data::build_calibration_set(world, 2, 16, 7);
  const PerplexityResult result = perplexity(model, sequences);
  EXPECT_NEAR(result.perplexity, std::exp(result.nll), 1e-9);
}

TEST(Perplexity, RejectsDegenerateInput) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(1), 84};
  EXPECT_THROW(perplexity(model, {}), std::invalid_argument);
  EXPECT_THROW(perplexity(model, {{1}}), std::invalid_argument);  // 1 token only
}

}  // namespace
}  // namespace sdd::eval
