// Parameterized property tests: invariants swept across shapes and seeds
// (TEST_P suites, per the repo's testing conventions).
#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/merge.hpp"
#include "core/prune.hpp"
#include "data/corpus.hpp"
#include "nn/decode.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace sdd {
namespace {

// ---- linear gradcheck across shapes ----------------------------------------

class LinearShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LinearShapes, GradCheck) {
  const auto [rows, in_features, out_features] = GetParam();
  Rng rng{static_cast<std::uint64_t>(rows * 131 + in_features * 17 + out_features)};
  Tensor x = Tensor::randn(rng, {rows, in_features}, 0.7F, true);
  Tensor w = Tensor::randn(rng, {out_features, in_features}, 0.7F, true);
  const auto loss = [&] {
    Tensor y = ops::linear(x, w);
    return ops::mean(ops::mul(y, y));
  };
  testing::expect_gradients_close(x, loss);
  testing::expect_gradients_close(w, loss);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 5},
                                           std::tuple{4, 8, 2}, std::tuple{3, 7, 7}));

// ---- attention gradcheck across head geometry ------------------------------

class AttentionShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionShapes, GradCheckQ) {
  const auto [seq, heads, head_dim] = GetParam();
  const std::int64_t channels = static_cast<std::int64_t>(heads) * head_dim;
  Rng rng{static_cast<std::uint64_t>(seq * 7 + heads * 3 + head_dim)};
  Tensor q = Tensor::randn(rng, {1, seq, channels}, 0.8F, true);
  Tensor k = Tensor::randn(rng, {1, seq, channels}, 0.8F, false);
  Tensor v = Tensor::randn(rng, {1, seq, channels}, 0.8F, false);
  const auto loss = [&] {
    Tensor o = ops::causal_self_attention(q, k, v, heads, 10000.0F);
    return ops::mean(ops::mul(o, o));
  };
  testing::expect_gradients_close(q, loss, 5e-3F);
}

INSTANTIATE_TEST_SUITE_P(Geometry, AttentionShapes,
                         ::testing::Values(std::tuple{1, 1, 4}, std::tuple{3, 2, 4},
                                           std::tuple{5, 1, 8}, std::tuple{4, 4, 2}));

// ---- decode/forward parity across depths and lengths ------------------------

class DecodeParity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecodeParity, KvCacheMatchesBatchedForward) {
  const auto [layers, seq] = GetParam();
  const nn::TransformerLM model{testing::tiny_config(layers),
                                static_cast<std::uint64_t>(layers * 100 + seq)};
  Rng rng{9};
  std::vector<std::int32_t> ids(static_cast<std::size_t>(seq));
  for (auto& id : ids) {
    id = static_cast<std::int32_t>(rng.uniform_int(0, model.config().vocab_size - 1));
  }
  NoGradGuard no_grad;
  const Tensor logits = model.forward(ids, 1, seq);
  auto state = model.make_decode_state();
  const std::int64_t vocab = model.config().vocab_size;
  for (std::int64_t t = 0; t < seq; ++t) {
    const auto step = model.decode_step(state, ids[static_cast<std::size_t>(t)]);
    for (std::int64_t v = 0; v < vocab; v += 7) {  // spot-check every 7th logit
      EXPECT_NEAR(step[static_cast<std::size_t>(v)], logits.data()[t * vocab + v],
                  3e-3F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DecodeParity,
                         ::testing::Values(std::tuple{1, 4}, std::tuple{2, 9},
                                           std::tuple{4, 16}, std::tuple{6, 25}));

// ---- SLERP properties across dimensions and t -------------------------------

class SlerpSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SlerpSweep, NormBoundedAndContinuous) {
  const auto [dim, t] = GetParam();
  Rng rng{static_cast<std::uint64_t>(dim * 31)};
  std::vector<float> a(static_cast<std::size_t>(dim));
  std::vector<float> b(static_cast<std::size_t>(dim));
  for (auto& v : a) v = rng.gaussian_float(0, 1);
  for (auto& v : b) v = rng.gaussian_float(0, 1);

  const auto norm = [](const std::vector<float>& v) {
    double s = 0.0;
    for (float x : v) s += static_cast<double>(x) * x;
    return std::sqrt(s);
  };
  const auto mid = core::slerp(a, b, static_cast<float>(t));
  // Norm stays within a generous band around the endpoint norms (SLERP on
  // non-unit vectors interpolates direction; magnitude stays comparable).
  const double lo = 0.3 * std::min(norm(a), norm(b));
  const double hi = 1.8 * std::max(norm(a), norm(b));
  EXPECT_GE(norm(mid), lo);
  EXPECT_LE(norm(mid), hi);

  // Continuity: a small step in t moves the result only slightly.
  const auto near = core::slerp(a, b, static_cast<float>(t) + 0.01F);
  double diff = 0.0;
  for (std::size_t i = 0; i < mid.size(); ++i) {
    diff += std::fabs(near[i] - mid[i]);
  }
  EXPECT_LT(diff / static_cast<double>(dim), 0.2);
}

INSTANTIATE_TEST_SUITE_P(DimsAndT, SlerpSweep,
                         ::testing::Combine(::testing::Values(4, 64, 512),
                                            ::testing::Values(0.1, 0.5, 0.9)));

// ---- prune-curve determinism across metrics and block sizes ----------------

class PruneDeterminism
    : public ::testing::TestWithParam<std::tuple<core::ImportanceMetric, int>> {};

TEST_P(PruneDeterminism, SameInputsSameCurve) {
  const auto [metric, block] = GetParam();
  const nn::TransformerLM model{testing::tiny_real_vocab_config(5), 21};
  const data::World world{42};
  const auto calibration = data::build_calibration_set(world, 2, 16, 3);
  const auto a = core::compute_block_distances(model, calibration, block, metric);
  const auto b = core::compute_block_distances(model, calibration, block, metric);
  EXPECT_EQ(a.best_start, b.best_start);
  EXPECT_EQ(a.distances, b.distances);
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndBlocks, PruneDeterminism,
    ::testing::Combine(::testing::Values(core::ImportanceMetric::kAngularCosine,
                                         core::ImportanceMetric::kBlockInfluence,
                                         core::ImportanceMetric::kRelativeMagnitude),
                       ::testing::Values(1, 2, 3)));

// ---- generation budget property ---------------------------------------------

class GenerateBudget : public ::testing::TestWithParam<int> {};

TEST_P(GenerateBudget, NeverExceedsRequestedTokens) {
  const int budget = GetParam();
  const nn::TransformerLM model{testing::tiny_config(2), 33};
  nn::GenerateOptions options;
  options.max_new_tokens = budget;
  const std::vector<std::int32_t> prompt{1, 2, 3};
  const auto out = nn::generate(model, prompt, options);
  EXPECT_LE(static_cast<int>(out.size()), budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, GenerateBudget, ::testing::Values(0, 1, 5, 17));

}  // namespace
}  // namespace sdd
