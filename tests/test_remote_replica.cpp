// Fork-based tests for cross-process serving replicas (src/serve/
// remote_replica) and the router's cross-process mode: the spawn_fn test seam
// forks a real worker process (no exec) so the full IPC protocol, heartbeat
// lease, crash respawn, rolling swap, and router failover run against live
// pids. The whole file compiles out under TSan (fork + threads is outside
// its model); thread-only coverage of the routing layer lives in
// test_router.cpp.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <unistd.h>

#include <gtest/gtest.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDD_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define SDD_TSAN 1
#endif

#if !defined(SDD_TSAN)

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/remote_replica.hpp"
#include "serve/router.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/proc.hpp"
#include "util/signals.hpp"

namespace sdd {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using serve::RemoteReplica;
using serve::RemoteReplicaConfig;
using serve::Request;
using serve::RequestState;
using serve::RouteRequest;
using serve::RouterConfig;
using serve::VariantRouter;
using serve::VariantSpec;
using testing::tiny_config;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("sdd_remote_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  static inline std::atomic<int> counter_{0};
  fs::path path_;
};

// Spawn seam: fork (no exec) and run the worker entry point directly in the
// child. The tiny test models sit far below the kernel parallel-dispatch
// thresholds, so the child never touches the thread pool it inherited
// workerless from the fork.
RemoteReplicaConfig fork_config() {
  RemoteReplicaConfig config;
  config.heartbeat_ms = 15;
  config.lease_ms = 500;
  config.backoff_ms = 20;
  config.backoff_cap_ms = 100;
  config.spawn_fn = [](int child_fd, const std::string& model_path,
                       const std::string& name) -> std::int64_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      signals::install_graceful_shutdown();
      ::_exit(serve::replica_worker_main(model_path, name, child_fd, 15));
    }
    return static_cast<std::int64_t>(pid);
  };
  return config;
}

Request request_for(std::uint64_t salt) {
  Request request;
  request.prompt = {static_cast<std::int32_t>(1 + salt % 7),
                    static_cast<std::int32_t>(3 + salt % 11),
                    static_cast<std::int32_t>(2 + salt % 5)};
  request.max_new_tokens = 6;
  request.seed = 7000 + salt;
  return request;
}

std::vector<std::int32_t> reference_tokens(const nn::TransformerLM& model,
                                           const Request& request) {
  nn::GenerateOptions options;
  options.max_new_tokens = request.max_new_tokens;
  options.temperature = request.temperature;
  options.stop_token = request.stop_token;
  options.seed = request.seed;
  return nn::generate(model, request.prompt, options);
}

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

constexpr auto kWait = 60s;  // generous terminal-state bound for CI machines

TEST(RemoteReplicaFork, ServesBitIdenticalAcrossProcessBoundary) {
  TempDir tmp;
  const nn::TransformerLM model{tiny_config(), 901};
  const std::string path = (tmp.path() / "full.bin").string();
  model.save(path);

  RemoteReplica replica{"full", path, fork_config(), [](const std::string&) {}};
  ASSERT_TRUE(wait_until([&] { return replica.ready(); }, 30s));
  EXPECT_GT(replica.cost(), 0);
  EXPECT_GT(replica.pid(), 1);

  for (std::uint64_t salt = 0; salt < 4; ++salt) {
    const Request request = request_for(salt);
    auto ticket = replica.submit(request);
    ASSERT_TRUE(ticket->wait_for(kWait));
    const serve::Response& response = ticket->wait();
    ASSERT_EQ(response.state, RequestState::kCompleted) << response.message;
    EXPECT_EQ(response.tokens, reference_tokens(model, request))
        << "tokens changed crossing the process boundary (salt " << salt
        << ")";
  }
  replica.shutdown();
}

TEST(RemoteReplicaFork, Kill9FailsTicketsOverAndRespawns) {
  TempDir tmp;
  const nn::TransformerLM model{tiny_config(), 902};
  const std::string path = (tmp.path() / "full.bin").string();
  model.save(path);

  std::atomic<int> deaths{0};
  RemoteReplica replica{"full", path, fork_config(),
                        [&](const std::string&) { ++deaths; }};
  ASSERT_TRUE(wait_until([&] { return replica.ready(); }, 30s));
  const std::int64_t first_pid = replica.pid();

  ::kill(static_cast<pid_t>(first_pid), SIGKILL);

  // A submit racing the death resolves retryable worker_lost, never hangs.
  auto ticket = replica.submit(request_for(0));
  ASSERT_TRUE(ticket->wait_for(kWait));
  const serve::Response& during = ticket->wait();
  if (during.state != RequestState::kCompleted) {
    EXPECT_EQ(during.state, RequestState::kFailed);
    ASSERT_TRUE(during.error.has_value());
    EXPECT_EQ(*during.error, ErrorKind::kWorkerLost);
    EXPECT_TRUE(during.retryable);
  }

  // Supervision: death detected exactly once, then a respawn with a new pid.
  ASSERT_TRUE(wait_until(
      [&] { return replica.ready() && replica.pid() != first_pid; }, 30s));
  EXPECT_EQ(deaths.load(), 1);
  EXPECT_GE(replica.restarts(), 1);
  EXPECT_GE(replica.stats().respawns, 1);

  const Request request = request_for(1);
  auto after = replica.submit(request);
  ASSERT_TRUE(after->wait_for(kWait));
  ASSERT_EQ(after->wait().state, RequestState::kCompleted)
      << after->wait().message;
  EXPECT_EQ(after->wait().tokens, reference_tokens(model, request));
  replica.shutdown();
}

TEST(RemoteReplicaFork, LeaseExpiryDetectsWedgedWorker) {
  TempDir tmp;
  const nn::TransformerLM model{tiny_config(), 903};
  const std::string path = (tmp.path() / "full.bin").string();
  model.save(path);

  RemoteReplicaConfig config = fork_config();
  config.lease_ms = 250;
  std::atomic<int> deaths{0};
  RemoteReplica replica{"full", path, config,
                        [&](const std::string&) { ++deaths; }};
  ASSERT_TRUE(wait_until([&] { return replica.ready(); }, 30s));
  const std::int64_t first_pid = replica.pid();

  // SIGSTOP silences the heartbeat without killing the process: exactly what
  // a wedged worker looks like. The lease must expire, the supervisor must
  // SIGKILL the stopped pid, and the respawn must serve again.
  ::kill(static_cast<pid_t>(first_pid), SIGSTOP);

  ASSERT_TRUE(wait_until(
      [&] { return replica.ready() && replica.pid() != first_pid; }, 30s));
  EXPECT_GE(replica.stats().lease_expiries, 1);
  EXPECT_EQ(deaths.load(), 1);

  const Request request = request_for(2);
  auto ticket = replica.submit(request);
  ASSERT_TRUE(ticket->wait_for(kWait));
  ASSERT_EQ(ticket->wait().state, RequestState::kCompleted)
      << ticket->wait().message;
  EXPECT_EQ(ticket->wait().tokens, reference_tokens(model, request));
  replica.shutdown();
}

TEST(RemoteReplicaFork, SwapModelDrainsAndServesNewWeights) {
  TempDir tmp;
  const nn::TransformerLM v1{tiny_config(), 904};
  const nn::TransformerLM v2{tiny_config(), 905};
  const std::string path_v1 = (tmp.path() / "v1.bin").string();
  const std::string path_v2 = (tmp.path() / "v2.bin").string();
  v1.save(path_v1);
  v2.save(path_v2);

  std::atomic<int> deaths{0};
  RemoteReplica replica{"full", path_v1, fork_config(),
                        [&](const std::string&) { ++deaths; }};
  ASSERT_TRUE(wait_until([&] { return replica.ready(); }, 30s));

  const Request request = request_for(3);
  {
    auto ticket = replica.submit(request);
    ASSERT_TRUE(ticket->wait_for(kWait));
    ASSERT_EQ(ticket->wait().state, RequestState::kCompleted);
    EXPECT_EQ(ticket->wait().tokens, reference_tokens(v1, request));
  }

  ASSERT_TRUE(replica.swap_model(path_v2, 30'000));
  EXPECT_GE(replica.restarts(), 1);
  EXPECT_GE(replica.stats().swaps, 1);
  // A drain is an intentional death: the breaker callback must NOT fire.
  EXPECT_EQ(deaths.load(), 0);

  {
    auto ticket = replica.submit(request);
    ASSERT_TRUE(ticket->wait_for(kWait));
    ASSERT_EQ(ticket->wait().state, RequestState::kCompleted)
        << ticket->wait().message;
    EXPECT_EQ(ticket->wait().tokens, reference_tokens(v2, request))
        << "post-swap decode still matches the old weights";
  }
  replica.shutdown();
}

TEST(RemoteRouterFork, KilledWorkerFailsOverAndProbesBack) {
  TempDir tmp;
  const nn::TransformerLM full{tiny_config(), 906};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  const std::string path_full = (tmp.path() / "full.bin").string();
  const std::string path_p1 = (tmp.path() / "p1.bin").string();
  full.save(path_full);
  p1.save(path_p1);

  RouterConfig config;
  config.poll_ms = 1;
  config.reroute_wait_ms = 2;
  config.breaker.open_after = 2;
  config.breaker.cooldown_ms = 100;
  config.cross_process = true;
  config.remote = fork_config();

  std::vector<VariantSpec> variants;
  variants.push_back({"full", {}, 0.9, path_full, 2});
  variants.push_back({"p1", {}, 0.6, path_p1, 1});
  VariantRouter router{std::move(variants), config};

  auto snapshot_of = [&](const std::string& name) {
    for (const auto& snap : router.replicas())
      if (snap.name == name) return snap;
    ADD_FAILURE() << "no replica named " << name;
    return serve::ReplicaSnapshot{};
  };
  ASSERT_TRUE(wait_until(
      [&] {
        return snapshot_of("full").pid > 1 && snapshot_of("p1").pid > 1;
      },
      30s));
  const std::int64_t full_pid = snapshot_of("full").pid;

  ::kill(static_cast<pid_t>(full_pid), SIGKILL);

  // Every request submitted across the crash must still complete — on the
  // sibling while 'full' is down — and the output must match whichever
  // variant served it bit-for-bit.
  std::vector<serve::RouteTicketPtr> tickets;
  for (std::uint64_t salt = 0; salt < 12; ++salt) {
    RouteRequest route;
    route.request = request_for(salt);
    tickets.push_back(router.submit(route));
    std::this_thread::sleep_for(10ms);
  }
  for (std::uint64_t salt = 0; salt < tickets.size(); ++salt) {
    ASSERT_TRUE(tickets[salt]->wait_for(kWait)) << "request " << salt;
    const serve::RouteResponse& routed = tickets[salt]->wait();
    ASSERT_EQ(routed.response.state, RequestState::kCompleted)
        << "request " << salt << ": " << routed.response.message;
    const nn::TransformerLM& served = routed.variant == "full" ? full : p1;
    EXPECT_EQ(routed.response.tokens,
              reference_tokens(served, request_for(salt)));
  }

  // The crash quarantined 'full' (breaker opened via the process-death
  // callback), the supervisor respawned it, and a half-open probe readmitted
  // it to healthy with a fresh pid.
  ASSERT_TRUE(wait_until(
      [&] {
        const auto snap = snapshot_of("full");
        return snap.health == serve::HealthState::kHealthy &&
               snap.pid > 1 && snap.pid != full_pid;
      },
      30s));
  EXPECT_GE(snapshot_of("full").restarts, 1);
  EXPECT_GE(snapshot_of("full").stats.breaker_opens, 1);

  router.shutdown();
}

}  // namespace
}  // namespace sdd

#endif  // !SDD_TSAN
