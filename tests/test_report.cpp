// Tests for the JSON writer, experiment reports, and self-consistency
// decoding.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "eval/report.hpp"
#include "eval/self_consistency.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace sdd {
namespace {

TEST(Json, SimpleObject) {
  JsonWriter json;
  json.begin_object()
      .field("name", "sdd")
      .field("count", std::int64_t{3})
      .field("ratio", 0.5)
      .field("ok", true)
      .end_object();
  EXPECT_EQ(json.str(), R"({"name":"sdd","count":3,"ratio":0.5,"ok":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("values").begin_array().value(1).value(2).end_array();
  json.key("inner").begin_object().field("x", 1.5).end_object();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"values":[1,2],"inner":{"x":1.5}})");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  JsonWriter json;
  json.begin_object().field("k", "line\nbreak").end_object();
  EXPECT_EQ(json.str(), "{\"k\":\"line\\nbreak\"}");
}

TEST(Json, StructureErrors) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("x"), std::logic_error);  // key outside object
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), std::logic_error);
    json.end_array();
    EXPECT_NO_THROW(json.str());
  }
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), std::logic_error);  // unterminated
  }
}

TEST(Report, RoundTripStructure) {
  eval::ExperimentReport report{"table1", "OpenLLM grid"};
  eval::SuiteScores baseline;
  baseline.tasks = {{"arc_c", 0.9}, {"gsm8k", 0.5}};
  baseline.average = 0.7;
  report.set_baseline(baseline);

  eval::ReportEntry entry;
  entry.model_label = "block3/sdd";
  entry.method = "self_data_distill";
  entry.prune_block = 3;
  entry.dataset = "openmathinstruct";
  entry.dataset_size = 1600;
  entry.scores = baseline;
  entry.recovery_percent = 100.0;
  report.add(entry);
  EXPECT_EQ(report.size(), 1U);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"experiment\":\"table1\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_percent\":100"), std::string::npos);
  EXPECT_NE(json.find("\"arc_c\":0.9"), std::string::npos);

  const auto path = std::filesystem::temp_directory_path() / "sdd_report_test.json";
  report.write(path);
  std::ifstream in{path};
  std::string contents{std::istreambuf_iterator<char>{in}, {}};
  EXPECT_EQ(contents, json + "\n");
  std::filesystem::remove(path);
}

TEST(SelfConsistency, SingleSampleEqualsGreedyPipeline) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(2), 61};
  const data::GenTask task = data::make_gsm8k_eval_task(4, 5);
  eval::SelfConsistencyOptions options;
  options.samples = 1;
  const auto a = eval::evaluate_gen_self_consistent(model, task, options);
  const auto b = eval::evaluate_gen_self_consistent(model, task, options);
  EXPECT_EQ(a.n_correct, b.n_correct);  // greedy => deterministic
  EXPECT_EQ(a.n_items, 4);
}

TEST(SelfConsistency, MajorityVoteAnswersAreFromSamples) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(2), 62};
  const data::Vocab& vocab = data::Vocab::instance();
  std::vector<data::TokenId> prompt{vocab.bos()};
  const auto q = vocab.encode("q : tom has 3 apples . how many apples does tom have ?");
  prompt.insert(prompt.end(), q.begin(), q.end());
  prompt.push_back(vocab.sep());

  eval::SelfConsistencyOptions options;
  options.samples = 3;
  options.max_new_tokens = 12;
  const auto answer = eval::self_consistent_answer(model, prompt, options);
  if (answer.has_value()) {
    EXPECT_GE(*answer, 0);
    EXPECT_LE(*answer, data::Vocab::kMaxNumber);
  }
}

TEST(SelfConsistency, DeterministicForFixedSeed) {
  const nn::TransformerLM model{testing::tiny_real_vocab_config(2), 63};
  const data::GenTask task = data::make_gsm8k_eval_task(3, 6);
  eval::SelfConsistencyOptions options;
  options.samples = 3;
  options.seed = 42;
  const auto a = eval::evaluate_gen_self_consistent(model, task, options);
  const auto b = eval::evaluate_gen_self_consistent(model, task, options);
  EXPECT_EQ(a.n_correct, b.n_correct);
}

}  // namespace
}  // namespace sdd
