// Durability-layer tests: checksummed artifacts, atomic commits, corrupt-
// artifact quarantine, fault injection, checkpoint/resume equivalence, and
// numeric-divergence rollback.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cache.hpp"
#include "core/pipeline.hpp"
#include "data/sft.hpp"
#include "data/world.hpp"
#include "test_helpers.hpp"
#include "train/trainer.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace sdd {
namespace {

namespace fs = std::filesystem;

// All scratch dirs live under one pid-suffixed root: `ctest -j` runs each
// test case in its own process, and fixture cases that share a literal dir
// name (CacheRobustnessTest's SetUp) must not remove_all a concurrent
// sibling's live directory. The root is deleted once at process exit.
const fs::path& scratch_root() {
  static const fs::path root =
      fs::temp_directory_path() /
      ("sdd_robust_" + std::to_string(::getpid()));
  return root;
}

class ScratchRootCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(scratch_root(), ec);
  }
};
const auto* const kScratchRootCleanup =
    ::testing::AddGlobalTestEnvironment(new ScratchRootCleanup);

fs::path temp_dir(const char* name) {
  const fs::path dir = scratch_root() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
}

void spew(const fs::path& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Armed faults must never leak across tests.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

// ---- XXH64 ---------------------------------------------------------------

TEST(Xxh64, MatchesReferenceVectors) {
  EXPECT_EQ(xxh64(std::string_view{""}), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxh64(std::string_view{"a"}), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxh64(std::string_view{"abc"}), 0x44BC2CF5AD770999ULL);
  // 39 bytes: exercises the 32-byte lane loop plus every tail width.
  EXPECT_EQ(xxh64(std::string_view{"Nobody inspects the spammish repetition"}),
            0xFBCEA83C8A378BF1ULL);
  EXPECT_EQ(xxh64(std::string_view{"abc"}, 42), 0x13C1D910702770E6ULL);
}

TEST(Xxh64, SingleBitFlipChangesHash) {
  std::string data(256, 'x');
  const std::uint64_t clean = xxh64(std::string_view{data});
  data[100] = static_cast<char>(data[100] ^ 1);
  EXPECT_NE(xxh64(std::string_view{data}), clean);
}

// ---- checksummed artifact framing ----------------------------------------

TEST(ArtifactFooter, FlippedByteAnywhereIsDetected) {
  const fs::path dir = temp_dir("sdd_robust_footer");
  const fs::path path = dir / "artifact.bin";
  {
    BinaryWriter writer{path};
    writer.write_magic("TESTMAG1", 1);
    writer.write_vector(std::vector<float>(64, 1.5F));
    writer.flush();
  }
  const std::string clean = slurp(path);
  ASSERT_GE(clean.size(), kArtifactFooterSize);
  // Flip one byte at a sample of offsets across payload and footer.
  for (std::size_t offset : {std::size_t{0}, clean.size() / 2, clean.size() - 1}) {
    std::string bad = clean;
    bad[offset] = static_cast<char>(bad[offset] ^ 0x20);
    spew(path, bad);
    EXPECT_THROW(BinaryReader{path}, SerializeError) << "offset " << offset;
  }
  fs::remove_all(dir);
}

TEST(ArtifactFooter, TruncationAtAnyPointIsDetected) {
  const fs::path dir = temp_dir("sdd_robust_trunc");
  const fs::path path = dir / "artifact.bin";
  {
    BinaryWriter writer{path};
    writer.write_magic("TESTMAG1", 1);
    writer.write_string("payload payload payload");
    writer.flush();
  }
  const std::string clean = slurp(path);
  for (std::size_t keep : {std::size_t{0}, std::size_t{10},
                           clean.size() - kArtifactFooterSize, clean.size() - 1}) {
    spew(path, clean.substr(0, keep));
    EXPECT_THROW(BinaryReader{path}, SerializeError) << "kept " << keep;
  }
  fs::remove_all(dir);
}

TEST(ArtifactFooter, OversizedVectorHeaderRejectedWithoutAllocating) {
  const fs::path dir = temp_dir("sdd_robust_oversize");
  const fs::path path = dir / "artifact.bin";
  {
    // A "vector" whose length claims far more elements than the payload
    // holds — e.g. written by a buggy producer. The checksum is valid, so
    // only the bounds check can catch it.
    BinaryWriter writer{path};
    writer.write_u64(1ULL << 60);  // vector length prefix
    writer.write_f32(0.0F);        // but only 4 bytes of data
    writer.flush();
  }
  BinaryReader reader{path};
  EXPECT_THROW(reader.read_vector<float>(), SerializeError);
  fs::remove_all(dir);
}

TEST(ArtifactFooter, OversizedStringHeaderRejected) {
  const fs::path dir = temp_dir("sdd_robust_oversize_str");
  const fs::path path = dir / "artifact.bin";
  {
    BinaryWriter writer{path};
    writer.write_u64(1ULL << 40);
    writer.flush();
  }
  BinaryReader reader{path};
  EXPECT_THROW(reader.read_string(), SerializeError);
  fs::remove_all(dir);
}

// ---- atomic commit + fault injection --------------------------------------

TEST_F(RobustnessTest, FaultSpecParsing) {
  const fault::FaultConfig config = fault::parse_fault_spec(
      "io_fail:p=0.25,crash_at_step:7,crash_at_io:3,truncate_write,mode:throw,"
      "seed:9");
  EXPECT_DOUBLE_EQ(config.io_fail_p, 0.25);
  EXPECT_EQ(config.crash_at_step, 7);
  EXPECT_EQ(config.crash_at_io, 3);
  EXPECT_TRUE(config.truncate_write);
  EXPECT_EQ(config.mode, fault::CrashMode::kThrow);
  EXPECT_EQ(config.seed, 9ULL);

  EXPECT_THROW(fault::parse_fault_spec("io_fail:p=2.0"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("crash_at_step:abc"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("warp_core_breach"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("mode:sideways"), std::invalid_argument);
}

TEST_F(RobustnessTest, FaultSpecParsingSupervisionDirectives) {
  const fault::FaultConfig config = fault::parse_fault_spec(
      "hang_at_step:9,nan_at_step:11,slow_io:ms=20,hang_cap:500");
  EXPECT_EQ(config.hang_at_step, 9);
  EXPECT_EQ(config.nan_at_step, 11);
  EXPECT_EQ(config.slow_io_ms, 20);
  EXPECT_EQ(config.hang_cap_ms, 500);
  EXPECT_TRUE(config.any());

  // slow_io accepts the bare-number shorthand too.
  EXPECT_EQ(fault::parse_fault_spec("slow_io:7").slow_io_ms, 7);

  // Partial or garbage specs must be rejected, not half-applied.
  EXPECT_THROW(fault::parse_fault_spec("hang_at_step:"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("hang_at_step"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("nan_at_step:sometimes"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("slow_io:ms=-5"), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("slow_io:ms="), std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("nan_at_step:4,bogus:1"),
               std::invalid_argument);
}

TEST_F(RobustnessTest, EmptyAndDefaultSpecsStayDisarmed) {
  EXPECT_FALSE(fault::parse_fault_spec("").any());
  // mode/seed alone configure behavior but arm nothing.
  EXPECT_FALSE(fault::parse_fault_spec("mode:throw,seed:5").any());
}

TEST_F(RobustnessTest, FailedCommitLeavesNoArtifact) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_iofail");
  const fs::path path = dir / "artifact.bin";

  fault::FaultConfig config;
  config.io_fail_p = 1.0;
  config.mode = fault::CrashMode::kThrow;
  fault::configure(config);

  BinaryWriter writer{path};
  writer.write_u64(7);
  EXPECT_THROW(writer.flush(), SerializeError);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(fs::path{path.string() + ".tmp"}));

  fault::reset();
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, CrashDuringCommitLeavesOnlyTempFile) {
  const ScopedLogLevel quiet{LogLevel::kOff};
  const fs::path dir = temp_dir("sdd_robust_crashio");
  const fs::path path = dir / "artifact.bin";

  fault::FaultConfig config;
  config.crash_at_io = 0;
  config.mode = fault::CrashMode::kThrow;
  fault::configure(config);

  {
    BinaryWriter writer{path};
    writer.write_u64(7);
    EXPECT_THROW(writer.flush(), fault::FaultCrash);
  }
  // The rename never happened: the final path is untouched, only the temp
  // file (which readers never look at) exists.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(fs::path{path.string() + ".tmp"}));

  fault::reset();
  {
    BinaryWriter writer{path};
    writer.write_u64(7);
    writer.flush();
  }
  BinaryReader reader{path};
  EXPECT_EQ(reader.read_u64(), 7ULL);
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, TornWriteIsDetectedOnRead) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_torn");
  const fs::path path = dir / "artifact.bin";

  fault::FaultConfig config;
  config.truncate_write = true;
  fault::configure(config);
  {
    BinaryWriter writer{path};
    writer.write_vector(std::vector<float>(128, 2.0F));
    writer.flush();
  }
  fault::reset();

  EXPECT_TRUE(fs::exists(path));  // the torn file did land at the final path
  EXPECT_THROW(BinaryReader{path}, SerializeError);
  fs::remove_all(dir);
}

// ---- cache quarantine ------------------------------------------------------

class CacheRobustnessTest : public RobustnessTest {
 protected:
  void SetUp() override { dir_ = temp_dir("sdd_robust_cache"); }
  void TearDown() override {
    RobustnessTest::TearDown();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(CacheRobustnessTest, CorruptModelIsQuarantinedAndRecomputable) {
  const ScopedLogLevel quiet{LogLevel::kError};
  core::ExperimentCache cache{dir_};
  const nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 11};
  cache.store_model(5, model);

  // Flip a byte in the middle of the stored weights.
  const fs::path path = cache.model_path(5);
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  spew(path, bytes);

  EXPECT_EQ(cache.load_model(5), std::nullopt);
  EXPECT_EQ(cache.quarantined_count(), 1);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(fs::path{path.string() + ".corrupt"}));

  // The slot is free again: a re-store round-trips.
  cache.store_model(5, model);
  const auto reloaded = cache.load_model(5);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->weight_hash(), model.weight_hash());
}

TEST_F(CacheRobustnessTest, TruncatedDatasetIsACacheMiss) {
  const ScopedLogLevel quiet{LogLevel::kError};
  core::ExperimentCache cache{dir_};
  data::World world{123};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 6, 5);
  cache.store_dataset(9, dataset);

  const fs::path path = cache.dataset_path(9);
  const std::string bytes = slurp(path);
  spew(path, bytes.substr(0, bytes.size() / 3));

  EXPECT_EQ(cache.load_dataset(9), std::nullopt);
  EXPECT_EQ(cache.quarantined_count(), 1);
}

TEST_F(CacheRobustnessTest, WrongMagicAndVersionAreCacheMisses) {
  const ScopedLogLevel quiet{LogLevel::kError};
  core::ExperimentCache cache{dir_};
  {
    // Valid checksum, wrong kind of artifact at a model path.
    BinaryWriter writer{cache.model_path(3)};
    writer.write_magic("WRONGMAG", 1);
    writer.flush();
  }
  EXPECT_EQ(cache.load_model(3), std::nullopt);
  EXPECT_EQ(cache.quarantined_count(), 1);
}

TEST_F(CacheRobustnessTest, GarbageMetricIsACacheMiss) {
  const ScopedLogLevel quiet{LogLevel::kError};
  core::ExperimentCache cache{dir_};
  cache.store_metric(1, 0.5);
  EXPECT_EQ(cache.load_metric(1), 0.5);

  spew(cache.metric_path(2), "not-a-number\n");
  EXPECT_EQ(cache.load_metric(2), std::nullopt);
  EXPECT_EQ(cache.quarantined_count(), 1);
}

TEST_F(CacheRobustnessTest, QuarantineCappedToNewestAtOpen) {
  const ScopedLogLevel quiet{LogLevel::kError};
  { core::ExperimentCache seed{dir_}; }  // create the directory layout

  // Six quarantined artifacts with strictly increasing timestamps, spread
  // over two subdirectories.
  std::vector<fs::path> corrupt;
  for (int i = 0; i < 6; ++i) {
    const fs::path path = dir_ / (i % 2 == 0 ? "models" : "datasets") /
                          ("artifact" + std::to_string(i) + ".bin.corrupt");
    spew(path, "stale quarantined bytes");
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::hours{6 - i});
    corrupt.push_back(path);
  }

  // Reopening the store keeps only the 2 newest by mtime.
  core::ExperimentCache cache{dir_, /*quarantine_keep=*/2};
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(fs::exists(corrupt[static_cast<std::size_t>(i)])) << i;
  }
  EXPECT_TRUE(fs::exists(corrupt[4]));
  EXPECT_TRUE(fs::exists(corrupt[5]));

  // keep=0 clears the quarantine entirely; non-corrupt files are untouched.
  cache.store_metric(1, 0.5);
  core::ExperimentCache wiped{dir_, /*quarantine_keep=*/0};
  EXPECT_FALSE(fs::exists(corrupt[4]));
  EXPECT_FALSE(fs::exists(corrupt[5]));
  EXPECT_EQ(wiped.load_metric(1), 0.5);
}

// ---- checkpoint/resume -----------------------------------------------------

std::vector<data::TokenId> synthetic_stream(std::int64_t n) {
  Rng rng{99};
  std::vector<data::TokenId> stream;
  stream.reserve(static_cast<std::size_t>(n));
  const auto vocab = static_cast<std::int64_t>(data::Vocab::instance().size());
  for (std::int64_t i = 0; i < n; ++i) {
    stream.push_back(static_cast<data::TokenId>(rng.uniform_int(0, vocab - 1)));
  }
  return stream;
}

train::PretrainConfig tiny_pretrain_config(const fs::path& ckpt) {
  train::PretrainConfig config;
  config.steps = 30;
  config.batch_size = 2;
  config.seq_len = 16;
  config.warmup_steps = 3;
  config.log_every = 0;
  config.seed = 21;
  config.checkpoint_path = ckpt;
  config.checkpoint_every = 8;
  return config;
}

TEST_F(RobustnessTest, PretrainResumeAfterCrashIsBitIdentical) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_resume");
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  // Uninterrupted reference run.
  nn::TransformerLM reference{model_config, 7};
  train::pretrain(reference, stream, tiny_pretrain_config(dir / "ref.ckpt"));

  // Crashed-and-restarted run: die at step 17 (after the step-16 checkpoint),
  // then restart from scratch with the same config.
  const train::PretrainConfig config = tiny_pretrain_config(dir / "crash.ckpt");
  fault::FaultConfig faults;
  faults.crash_at_step = 17;
  faults.mode = fault::CrashMode::kThrow;
  fault::configure(faults);
  {
    nn::TransformerLM victim{model_config, 7};
    EXPECT_THROW(train::pretrain(victim, stream, config), fault::FaultCrash);
  }
  fault::reset();
  EXPECT_TRUE(fs::exists(config.checkpoint_path));

  nn::TransformerLM resumed{model_config, 7};
  train::pretrain(resumed, stream, config);
  EXPECT_EQ(resumed.weight_hash(), reference.weight_hash());
  // The checkpoint is cleaned up once the run completes.
  EXPECT_FALSE(fs::exists(config.checkpoint_path));
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, PretrainResumeBeforeFirstCheckpointStartsFresh) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_resume_early");
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  nn::TransformerLM reference{model_config, 7};
  train::pretrain(reference, stream, tiny_pretrain_config(dir / "ref.ckpt"));

  const train::PretrainConfig config = tiny_pretrain_config(dir / "crash.ckpt");
  fault::FaultConfig faults;
  faults.crash_at_step = 3;  // before the first checkpoint at step 8
  faults.mode = fault::CrashMode::kThrow;
  fault::configure(faults);
  {
    nn::TransformerLM victim{model_config, 7};
    EXPECT_THROW(train::pretrain(victim, stream, config), fault::FaultCrash);
  }
  fault::reset();

  nn::TransformerLM resumed{model_config, 7};
  train::pretrain(resumed, stream, config);
  EXPECT_EQ(resumed.weight_hash(), reference.weight_hash());
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, CorruptCheckpointFallsBackToFreshStart) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_badckpt");
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  nn::TransformerLM reference{model_config, 7};
  train::pretrain(reference, stream, tiny_pretrain_config(dir / "ref.ckpt"));

  const train::PretrainConfig config = tiny_pretrain_config(dir / "bad.ckpt");
  spew(config.checkpoint_path, "garbage that is definitely not a checkpoint");
  nn::TransformerLM resumed{model_config, 7};
  train::pretrain(resumed, stream, config);
  EXPECT_EQ(resumed.weight_hash(), reference.weight_hash());
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, StaleCheckpointFromOtherConfigIsIgnored) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_staleckpt");
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  // Leave a mid-run checkpoint behind with a different step budget.
  train::PretrainConfig other = tiny_pretrain_config(dir / "shared.ckpt");
  other.steps = 20;
  fault::FaultConfig faults;
  faults.crash_at_step = 10;
  faults.mode = fault::CrashMode::kThrow;
  fault::configure(faults);
  {
    nn::TransformerLM victim{model_config, 7};
    EXPECT_THROW(train::pretrain(victim, stream, other), fault::FaultCrash);
  }
  fault::reset();
  ASSERT_TRUE(fs::exists(other.checkpoint_path));

  // Same path, different config: the fingerprint must reject the leftover.
  nn::TransformerLM reference{model_config, 7};
  train::pretrain(reference, stream, tiny_pretrain_config(dir / "ref.ckpt"));
  nn::TransformerLM resumed{model_config, 7};
  train::pretrain(resumed, stream, tiny_pretrain_config(dir / "shared.ckpt"));
  EXPECT_EQ(resumed.weight_hash(), reference.weight_hash());
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, LoraSftResumeAfterCrashIsBitIdentical) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_sft_resume");
  data::World world{321};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 24, 5);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);
  const nn::TransformerLM base{model_config, 13};
  nn::LoraConfig lora;
  lora.rank = 2;

  train::SftTrainConfig config;
  config.epochs = 4;
  config.max_steps = 18;
  config.batch_size = 4;
  config.warmup_steps = 2;
  config.checkpoint_every = 5;

  const auto run = [&](const fs::path& ckpt) {
    nn::TransformerLM model = base.clone();
    model.attach_lora(lora, /*seed=*/77);
    train::SftTrainConfig c = config;
    c.checkpoint_path = ckpt;
    train::sft_train(model, dataset, c);
    model.merge_lora();
    return model.weight_hash();
  };

  const std::uint64_t reference = run(dir / "ref.ckpt");

  fault::FaultConfig faults;
  faults.crash_at_step = 12;  // after the step-10 checkpoint
  faults.mode = fault::CrashMode::kThrow;
  fault::configure(faults);
  EXPECT_THROW(run(dir / "crash.ckpt"), fault::FaultCrash);
  fault::reset();

  EXPECT_EQ(run(dir / "crash.ckpt"), reference);
  fs::remove_all(dir);
}

// ---- numeric-divergence guard ---------------------------------------------

TEST_F(RobustnessTest, InjectedNanRollsBackToBitIdenticalWeights) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  train::PretrainConfig config;
  config.steps = 24;
  config.batch_size = 2;
  config.seq_len = 16;
  config.warmup_steps = 3;
  config.log_every = 0;
  config.seed = 21;

  // Clean reference.
  nn::TransformerLM reference{model_config, 7};
  const train::TrainStats ref_stats = train::pretrain(reference, stream, config);
  EXPECT_EQ(ref_stats.rollbacks, 0);
  EXPECT_EQ(ref_stats.skipped_batches, 0);

  // Poison the loss once at step 5: the guard must restore the last snapshot
  // and replay to weights bit-identical to the clean run.
  fault::FaultConfig faults;
  faults.nan_at_step = 5;
  fault::configure(faults);
  nn::TransformerLM poisoned{model_config, 7};
  const train::TrainStats stats = train::pretrain(poisoned, stream, config);
  fault::reset();

  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_EQ(stats.skipped_batches, 0);
  EXPECT_EQ(poisoned.weight_hash(), reference.weight_hash());
  // The rollback also rewinds the loss log: one entry per step, no phantom
  // NaN entries from the replayed window.
  ASSERT_EQ(stats.losses.size(), static_cast<std::size_t>(config.steps));
  for (float loss : stats.losses) EXPECT_TRUE(std::isfinite(loss));
}

TEST_F(RobustnessTest, PersistentDivergenceSkipsBatchAndHalvesLr) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const auto stream = synthetic_stream(600);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  train::PretrainConfig config;
  config.steps = 12;
  config.batch_size = 2;
  config.seq_len = 16;
  config.warmup_steps = 2;
  config.log_every = 0;
  config.seed = 21;
  config.max_rollbacks = 0;  // first divergence is already "persistent"

  fault::FaultConfig faults;
  faults.nan_at_step = 4;
  fault::configure(faults);
  nn::TransformerLM model{model_config, 7};
  const train::TrainStats stats = train::pretrain(model, stream, config);
  fault::reset();

  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_EQ(stats.skipped_batches, 1);
  EXPECT_EQ(stats.lr_halvings, 1);
  // The run still completes with sane weights.
  EXPECT_GT(model.param_count(), 0);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
}

TEST_F(RobustnessTest, GuardDisabledLeavesCleanRunUntouched) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const auto stream = synthetic_stream(400);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);

  train::PretrainConfig config;
  config.steps = 10;
  config.batch_size = 2;
  config.seq_len = 16;
  config.warmup_steps = 2;
  config.log_every = 0;
  config.seed = 21;

  nn::TransformerLM guarded{model_config, 7};
  train::pretrain(guarded, stream, config);

  config.numeric_guard = false;
  nn::TransformerLM unguarded{model_config, 7};
  train::pretrain(unguarded, stream, config);
  EXPECT_EQ(guarded.weight_hash(), unguarded.weight_hash());
}

TEST_F(RobustnessTest, SftInjectedNanRollsBackToBitIdenticalWeights) {
  const ScopedLogLevel quiet{LogLevel::kError};
  data::World world{321};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 24, 5);
  const nn::ModelConfig model_config = sdd::testing::tiny_real_vocab_config(2);
  const nn::TransformerLM base{model_config, 13};
  nn::LoraConfig lora;
  lora.rank = 2;

  train::SftTrainConfig config;
  config.epochs = 4;
  config.max_steps = 14;
  config.batch_size = 4;
  config.warmup_steps = 2;

  const auto run = [&](train::TrainStats* stats_out) {
    nn::TransformerLM model = base.clone();
    model.attach_lora(lora, /*seed=*/77);
    const train::TrainStats stats = train::sft_train(model, dataset, config);
    if (stats_out != nullptr) *stats_out = stats;
    model.merge_lora();
    return model.weight_hash();
  };

  const std::uint64_t reference = run(nullptr);

  fault::FaultConfig faults;
  faults.nan_at_step = 6;
  fault::configure(faults);
  train::TrainStats stats;
  const std::uint64_t poisoned = run(&stats);
  fault::reset();

  EXPECT_GE(stats.rollbacks, 1);
  EXPECT_EQ(poisoned, reference);
}

// ---- pipeline-level degradation -------------------------------------------

core::PipelineConfig micro_pipeline_config(const fs::path& cache_dir) {
  core::PipelineConfig config;
  config.model = sdd::testing::tiny_real_vocab_config(3);
  config.corpus.n_documents = 300;
  config.pretrain.steps = 20;
  config.pretrain.warmup_steps = 2;
  config.pretrain.batch_size = 4;
  config.pretrain.seq_len = 32;
  config.pretrain.log_every = 0;
  config.pretrain.checkpoint_every = 6;
  config.sft.epochs = 1;
  config.sft.max_steps = 5;
  config.sft.batch_size = 4;
  config.sft.checkpoint_every = 2;
  config.distill.max_new_tokens = 8;
  config.calib_samples = 2;
  config.calib_seq = 24;
  config.cache_dir = cache_dir;
  return config;
}

TEST_F(RobustnessTest, PipelineRecomputesCorruptBaseModel) {
  const ScopedLogLevel quiet{LogLevel::kError};
  const fs::path dir = temp_dir("sdd_robust_pipeline");
  const core::PipelineConfig config = micro_pipeline_config(dir);

  std::uint64_t expected = 0;
  {
    core::Pipeline pipeline{config};
    expected = pipeline.base_model().weight_hash();
  }

  // Corrupt the cached base model on disk.
  const fs::path path =
      core::ExperimentCache{dir}.model_path(config.base_key());
  ASSERT_TRUE(fs::exists(path));
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spew(path, bytes);

  // A fresh pipeline must notice, retrain deterministically, and repopulate
  // the cache instead of throwing SerializeError at the bench.
  core::Pipeline pipeline{config};
  EXPECT_EQ(pipeline.base_model().weight_hash(), expected);
  EXPECT_TRUE(fs::exists(path));  // re-stored
  {
    BinaryReader reader{path};  // and the re-stored artifact checks out
  }
  fs::remove_all(dir);
}

TEST_F(RobustnessTest, PipelineSurvivesTotalStoreFailure) {
  const ScopedLogLevel quiet{LogLevel::kOff};
  const fs::path dir = temp_dir("sdd_robust_pipeline_iofail");

  fault::FaultConfig faults;
  faults.io_fail_p = 1.0;  // every artifact commit fails
  faults.mode = fault::CrashMode::kThrow;
  fault::configure(faults);

  core::Pipeline pipeline{micro_pipeline_config(dir)};
  const nn::TransformerLM recovered =
      pipeline.recovered(1, core::FtMethod::kSelfDataDistill, "gsm8k", 8);
  EXPECT_GT(recovered.param_count(), 0);
  fault::reset();

  // Nothing was cached, so a clean pipeline recomputes from scratch and must
  // land on the same weights.
  core::Pipeline clean{micro_pipeline_config(dir)};
  const nn::TransformerLM recomputed =
      clean.recovered(1, core::FtMethod::kSelfDataDistill, "gsm8k", 8);
  EXPECT_EQ(recomputed.weight_hash(), recovered.weight_hash());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sdd
