// Tests for the replicated multi-variant serving layer (src/serve/replica,
// src/serve/router): the circuit-breaker health state machine, quality/
// deadline-aware routing, bounded failover, and the router chaos injectors.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/replica.hpp"
#include "serve/router.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace sdd {
namespace {

using namespace std::chrono_literals;
using serve::BreakerConfig;
using serve::HealthBreaker;
using serve::HealthState;
using serve::QualityTable;
using serve::Request;
using serve::RequestState;
using serve::Response;
using serve::RouteRequest;
using serve::RouteResponse;
using serve::RouterConfig;
using serve::VariantRouter;
using serve::VariantSpec;
using testing::tiny_config;

constexpr auto kWait = 60s;  // generous terminal-state bound for CI machines

// ---- breaker state machine (fake clock) ------------------------------------

struct FakeClock {
  std::chrono::steady_clock::time_point now =
      std::chrono::steady_clock::time_point{} + 1h;
  void advance(std::chrono::milliseconds by) { now += by; }
};

BreakerConfig breaker_config(FakeClock& clock) {
  BreakerConfig config;
  config.degraded_after = 1;
  config.open_after = 3;
  config.cooldown_ms = 100;
  config.probe_max = 1;
  config.now_fn = [&clock] { return clock.now; };
  return config;
}

TEST(Breaker, OpensAfterConsecutiveFailuresAndCoolsToHalfOpen) {
  FakeClock clock;
  HealthBreaker breaker{breaker_config(clock)};
  EXPECT_EQ(breaker.state(), HealthState::kHealthy);
  EXPECT_TRUE(breaker.dispatchable());

  bool is_probe = false;
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kDegraded);
  EXPECT_TRUE(breaker.dispatchable());  // degraded still serves

  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kOpen);
  EXPECT_EQ(breaker.consecutive_failures(), 3);

  // Quarantined: nothing dispatches until the cooldown elapses.
  EXPECT_FALSE(breaker.dispatchable());
  EXPECT_FALSE(breaker.try_begin(&is_probe));
  EXPECT_GT(breaker.cooldown_remaining_ms(), 0);

  clock.advance(101ms);
  EXPECT_TRUE(breaker.dispatchable());
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  EXPECT_TRUE(is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kHalfOpen);
}

TEST(Breaker, ProbeSuccessClosesProbeFailureReopens) {
  FakeClock clock;
  HealthBreaker breaker{breaker_config(clock)};
  bool is_probe = false;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_begin(&is_probe));
    breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  }
  ASSERT_EQ(breaker.state(), HealthState::kOpen);

  // Failed probe: straight back to open, cooldown restarts.
  clock.advance(101ms);
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  ASSERT_TRUE(is_probe);
  breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kOpen);
  EXPECT_FALSE(breaker.dispatchable());

  // Successful probe closes the breaker and clears the streak.
  clock.advance(101ms);
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  ASSERT_TRUE(is_probe);
  breaker.record(HealthBreaker::Outcome::kSuccess, is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kHealthy);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(Breaker, HalfOpenProbeBudgetIsBounded) {
  FakeClock clock;
  HealthBreaker breaker{breaker_config(clock)};
  bool is_probe = false;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.try_begin(&is_probe));
    breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  }
  clock.advance(101ms);
  ASSERT_TRUE(breaker.try_begin(&is_probe));  // takes the only probe token
  ASSERT_TRUE(is_probe);
  bool second_probe = false;
  EXPECT_FALSE(breaker.try_begin(&second_probe));  // budget exhausted
  EXPECT_FALSE(breaker.dispatchable());
  // Abandoning the probe returns the token without recording an outcome.
  breaker.abandon(is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kHalfOpen);
  EXPECT_TRUE(breaker.try_begin(&second_probe));
  EXPECT_TRUE(second_probe);
}

TEST(Breaker, BackpressureNeverTripsTheBreaker) {
  FakeClock clock;
  HealthBreaker breaker{breaker_config(clock)};
  bool is_probe = false;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(breaker.try_begin(&is_probe));
    breaker.record(HealthBreaker::Outcome::kBackpressure, is_probe);
  }
  EXPECT_EQ(breaker.state(), HealthState::kHealthy);
  EXPECT_EQ(breaker.load_penalty(), 20);
  // Success decays the pressure instead of zeroing it.
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kSuccess, is_probe);
  EXPECT_EQ(breaker.load_penalty(), 10);
}

TEST(Breaker, DegradedHealsOnSuccess) {
  FakeClock clock;
  HealthBreaker breaker{breaker_config(clock)};
  bool is_probe = false;
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kFailure, is_probe);
  ASSERT_EQ(breaker.state(), HealthState::kDegraded);
  ASSERT_TRUE(breaker.try_begin(&is_probe));
  breaker.record(HealthBreaker::Outcome::kSuccess, is_probe);
  EXPECT_EQ(breaker.state(), HealthState::kHealthy);
}

// ---- router ----------------------------------------------------------------

std::vector<std::int32_t> prompt_for(std::uint64_t salt) {
  return {static_cast<std::int32_t>(1 + salt % 7),
          static_cast<std::int32_t>(3 + salt % 11),
          static_cast<std::int32_t>(2 + salt % 5)};
}

RouteRequest route_request_for(std::uint64_t salt, std::int64_t max_new = 8) {
  RouteRequest route;
  route.request.prompt = prompt_for(salt);
  route.request.max_new_tokens = max_new;
  route.request.seed = 4000 + salt;
  return route;
}

std::vector<std::int32_t> reference_tokens(const nn::TransformerLM& model,
                                           const Request& request) {
  nn::GenerateOptions options;
  options.max_new_tokens = request.max_new_tokens;
  options.temperature = request.temperature;
  options.stop_token = request.stop_token;
  options.seed = request.seed;
  return nn::generate(model, request.prompt, options);
}

RouterConfig test_router_config() {
  RouterConfig config;
  config.poll_ms = 1;
  config.reroute_wait_ms = 2;
  config.breaker.cooldown_ms = 50;
  return config;
}

// "full" (3 layers, quality 0.9) + "p1" (2 layers, quality 0.6).
std::vector<VariantSpec> two_variants(std::uint64_t seed) {
  const nn::TransformerLM full{tiny_config(), seed};
  std::vector<VariantSpec> variants;
  variants.push_back({"full", full.clone(), 0.9, "", 0});
  variants.push_back({"p1", full.pruned(2, 1), 0.6, "", 0});
  return variants;
}

const RouteResponse& wait_routed(serve::RouteTicket& ticket) {
  EXPECT_TRUE(ticket.wait_for(kWait)) << "request did not reach terminal state";
  return ticket.wait();
}

TEST(Router, RoutesToHighestQualityVariant) {
  const nn::TransformerLM full{tiny_config(), 60};
  VariantRouter router{two_variants(60), test_router_config()};
  const RouteRequest route = route_request_for(0);
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  ASSERT_EQ(routed.response.state, RequestState::kCompleted)
      << routed.response.message;
  EXPECT_EQ(routed.variant, "full");
  EXPECT_EQ(routed.hops, 0);
  EXPECT_FALSE(routed.rerouted);
  EXPECT_EQ(routed.response.tokens, reference_tokens(full, route.request));
}

TEST(Router, TightDeadlinePrefersCheapVariant) {
  const nn::TransformerLM full{tiny_config(), 61};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  RouterConfig config = test_router_config();
  config.cheap_deadline_ms = 5000;  // anything under 5s counts as pressured
  VariantRouter router{two_variants(61), config};

  RouteRequest route = route_request_for(1);
  route.request.deadline_ms = 2000;
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  ASSERT_EQ(routed.response.state, RequestState::kCompleted)
      << routed.response.message;
  // Degradation by routing: the pruned (cheaper) variant serves it, and the
  // output is bit-identical to that variant's unloaded decode.
  EXPECT_EQ(routed.variant, "p1");
  EXPECT_EQ(routed.response.tokens, reference_tokens(p1, route.request));
}

TEST(Router, PinnedVariantWinsOverQualityOrder) {
  const nn::TransformerLM full{tiny_config(), 62};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  VariantRouter router{two_variants(62), test_router_config()};
  RouteRequest route = route_request_for(2);
  route.variant = "p1";
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  ASSERT_EQ(routed.response.state, RequestState::kCompleted);
  EXPECT_EQ(routed.variant, "p1");
  EXPECT_EQ(routed.response.tokens, reference_tokens(p1, route.request));

  RouteRequest unknown = route_request_for(3);
  unknown.variant = "nope";
  auto rejected_ticket = router.submit(unknown);
  const RouteResponse& rejected = wait_routed(*rejected_ticket);
  EXPECT_EQ(rejected.response.state, RequestState::kRejected);
  ASSERT_TRUE(rejected.response.error.has_value());
  EXPECT_EQ(*rejected.response.error, ErrorKind::kFatal);
}

TEST(Router, FailoverReroutesAndStaysBitIdentical) {
  const nn::TransformerLM p1 = nn::TransformerLM{tiny_config(), 63}.pruned(2, 1);

  // The first dispatch to replica 0 ("full") dies before reaching its queue;
  // the request must fail over to "p1" and produce p1's exact unloaded output.
  fault::FaultConfig faults;
  faults.replica_fail_at = 0;
  faults.replica_fail_count = 1;
  faults.replica_fault_index = 0;
  fault::configure(faults);

  VariantRouter router{two_variants(63), test_router_config()};
  const RouteRequest route = route_request_for(4);
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  fault::reset();

  ASSERT_EQ(routed.response.state, RequestState::kCompleted)
      << routed.response.message;
  EXPECT_EQ(routed.variant, "p1");
  EXPECT_EQ(routed.hops, 1);
  EXPECT_TRUE(routed.rerouted);
  EXPECT_EQ(routed.response.tokens, reference_tokens(p1, route.request));
  EXPECT_GE(router.stats().failovers, 1);
  EXPECT_GE(router.stats().injected_failures, 1);
}

TEST(Router, DeadVariantQuarantinedThenProbedBackHealthy) {
  // Dispatches 0..3 to "full" fail; with open_after=2 the breaker opens
  // after two failures, then half-open probes burn through the rest of the
  // window and the variant recovers. Requests pin "full" so traffic keeps
  // reaching the sick replica instead of settling on "p1".
  fault::FaultConfig faults;
  faults.replica_fail_at = 0;
  faults.replica_fail_count = 4;
  faults.replica_fault_index = 0;
  fault::configure(faults);

  RouterConfig config = test_router_config();
  config.breaker.open_after = 2;
  config.breaker.cooldown_ms = 25;
  VariantRouter router{two_variants(64), config};

  const auto deadline = std::chrono::steady_clock::now() + 30s;
  std::uint64_t salt = 10;
  bool recovered = false;
  while (std::chrono::steady_clock::now() < deadline) {
    RouteRequest route = route_request_for(salt++);
    route.variant = "full";
    auto ticket = router.submit(route);
    const RouteResponse& routed = wait_routed(*ticket);
    EXPECT_TRUE(serve::request_state_terminal(routed.response.state));
    const serve::ReplicaSnapshot target = router.replicas()[0];
    if (target.health == HealthState::kHealthy &&
        target.stats.probe_successes >= 1) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(5ms);
  }
  fault::reset();

  EXPECT_TRUE(recovered) << "dead variant never probed back to healthy";
  const serve::ReplicaSnapshot snap = router.replicas()[0];
  EXPECT_GE(snap.stats.breaker_opens, 1);
  EXPECT_GE(snap.stats.probes, 1);
  EXPECT_GE(snap.stats.probe_successes, 1);
  // Every request meanwhile was served or typed — none lost.
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Router, SingleDeadVariantExhaustsFailoverTyped) {
  // Only one variant, and every dispatch to it fails: the request must still
  // terminate, carrying the last typed failure plus an exhausted marker.
  fault::FaultConfig faults;
  faults.replica_fail_at = 0;
  faults.replica_fail_count = 1000;
  faults.replica_fault_index = 0;
  fault::configure(faults);

  const nn::TransformerLM full{tiny_config(), 65};
  std::vector<VariantSpec> variants;
  variants.push_back({"full", full.clone(), 0.9, "", 0});
  RouterConfig config = test_router_config();
  config.failover_max = 2;
  VariantRouter router{std::move(variants), config};

  auto ticket = router.submit(route_request_for(5));
  const RouteResponse& routed = wait_routed(*ticket);
  fault::reset();

  EXPECT_EQ(routed.response.state, RequestState::kFailed);
  ASSERT_TRUE(routed.response.error.has_value());
  EXPECT_EQ(*routed.response.error, ErrorKind::kWorkerLost);
  EXPECT_EQ(routed.hops, 2);
  EXPECT_NE(routed.response.message.find("failover exhausted"),
            std::string::npos);
  EXPECT_EQ(router.stats().exhausted, 1);
}

TEST(Router, EmptyPromptIsTerminalWithoutFailover) {
  VariantRouter router{two_variants(66), test_router_config()};
  RouteRequest route;
  route.request.prompt = {};  // invalid on every variant
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  EXPECT_EQ(routed.response.state, RequestState::kRejected);
  ASSERT_TRUE(routed.response.error.has_value());
  EXPECT_EQ(*routed.response.error, ErrorKind::kFatal);
  // A bad request must not burn failover hops or trip any breaker.
  EXPECT_EQ(routed.hops, 0);
  EXPECT_EQ(router.stats().failovers, 0);
  for (const auto& snap : router.replicas()) {
    EXPECT_EQ(snap.health, HealthState::kHealthy);
  }
}

TEST(Router, ShutdownResolvesPendingRequests) {
  RouterConfig config = test_router_config();
  config.start_dispatcher = false;  // nothing will ever dispatch
  VariantRouter router{two_variants(67), config};
  auto a = router.submit(route_request_for(6));
  auto b = router.submit(route_request_for(7));
  router.shutdown();
  EXPECT_EQ(a->wait().response.state, RequestState::kRejected);
  EXPECT_EQ(b->wait().response.state, RequestState::kRejected);
  EXPECT_TRUE(a->wait().response.retryable);
  // Submits after shutdown get typed rejections too, never hangs.
  auto late = router.submit(route_request_for(8));
  EXPECT_EQ(late->wait().response.state, RequestState::kRejected);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

TEST(Router, CancelResolvesBeforeDispatch) {
  RouterConfig config = test_router_config();
  config.start_dispatcher = false;
  VariantRouter router{two_variants(68), config};
  auto ticket = router.submit(route_request_for(9));
  ticket->cancel();
  router.start();
  const RouteResponse& routed = wait_routed(*ticket);
  EXPECT_EQ(routed.response.state, RequestState::kCancelled);
  EXPECT_FALSE(routed.response.error.has_value());
}

// ---- quality table ---------------------------------------------------------

TEST(Router, QualityTableParsesSuiteDigestFormat) {
  const QualityTable table = QualityTable::parse(
      "variant full\n"
      "metric arc_c 0.61\n"
      "metric gsm8k 0.38\n"
      "metric average 0.49\n"
      "variant p1\n"
      "metric arc_c 0.55\n"
      "metric gsm8k 0.44\n"
      "metric average 0.50\n");
  EXPECT_TRUE(table.has_variant("full"));
  EXPECT_DOUBLE_EQ(table.score("full", "arc_c", 0.0), 0.61);
  // Unknown task falls back to the variant average, then to the caller's
  // fallback for unknown variants.
  EXPECT_DOUBLE_EQ(table.score("full", "winogrande", 0.0), 0.49);
  EXPECT_DOUBLE_EQ(table.score("ghost", "arc_c", 0.33), 0.33);

  EXPECT_THROW(QualityTable::parse("metric arc_c 0.5\n"), Error);
  EXPECT_THROW(QualityTable::parse("variant\n"), Error);
  EXPECT_THROW(QualityTable::parse("bogus line here\n"), Error);
  EXPECT_THROW(QualityTable::load("/nonexistent/quality.txt"), Error);
}

TEST(Router, TaskScoreDrivesVariantChoice) {
  const nn::TransformerLM full{tiny_config(), 69};
  const nn::TransformerLM p1 = full.pruned(2, 1);
  // p1 beats full on gsm8k despite a lower average — a gsm8k-tagged request
  // must land on p1.
  QualityTable table = QualityTable::parse(
      "variant full\n"
      "metric gsm8k 0.38\n"
      "metric average 0.60\n"
      "variant p1\n"
      "metric gsm8k 0.44\n"
      "metric average 0.50\n");
  VariantRouter router{two_variants(69), test_router_config(),
                       std::move(table)};
  RouteRequest route = route_request_for(11);
  route.task = "gsm8k";
  auto ticket = router.submit(route);
  const RouteResponse& routed = wait_routed(*ticket);
  ASSERT_EQ(routed.response.state, RequestState::kCompleted);
  EXPECT_EQ(routed.variant, "p1");
  EXPECT_EQ(routed.response.tokens, reference_tokens(p1, route.request));
}

// ---- router fault directives -----------------------------------------------

TEST(Router, FaultSpecParsesRouterDirectives) {
  const fault::FaultConfig config = fault::parse_fault_spec(
      "replica_fail:at=2,replica_fail_n:3,replica_idx:1,replica_slow:30");
  EXPECT_EQ(config.replica_fail_at, 2);
  EXPECT_EQ(config.replica_fail_count, 3);
  EXPECT_EQ(config.replica_fault_index, 1);
  EXPECT_EQ(config.replica_slow_ms, 30);
  EXPECT_TRUE(config.any());
  EXPECT_TRUE(fault::parse_fault_spec("breaker_flap").breaker_flap);
  // Short forms without the "at=" / "ms=" key.
  EXPECT_EQ(fault::parse_fault_spec("replica_fail:4").replica_fail_at, 4);
  EXPECT_EQ(fault::parse_fault_spec("replica_slow:ms=9").replica_slow_ms, 9);
  EXPECT_THROW(fault::parse_fault_spec("replica_fail:at=x"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("replica_idx:-1"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_fault_spec("replica_fail_n:0"),
               std::invalid_argument);
}

TEST(Router, ShouldFailReplicaWindowAndTargeting) {
  fault::FaultConfig faults;
  faults.replica_fail_at = 1;
  faults.replica_fail_count = 2;
  faults.replica_fault_index = 0;
  fault::configure(faults);
  // Non-target replicas never fail and never advance the ordinal.
  EXPECT_FALSE(fault::should_fail_replica(1));
  EXPECT_FALSE(fault::should_fail_replica(2));
  // Target ordinals: 0 ok, 1..2 fail, 3 ok again (window passed).
  EXPECT_FALSE(fault::should_fail_replica(0));
  EXPECT_TRUE(fault::should_fail_replica(0));
  EXPECT_TRUE(fault::should_fail_replica(0));
  EXPECT_FALSE(fault::should_fail_replica(0));
  fault::reset();
  EXPECT_FALSE(fault::should_fail_replica(0));
}

TEST(Router, BreakerFlapFailsInBursts) {
  fault::FaultConfig faults;
  faults.breaker_flap = true;
  fault::configure(faults);
  std::vector<bool> pattern;
  for (int i = 0; i < 12; ++i) pattern.push_back(fault::should_fail_replica(0));
  fault::reset();
  const std::vector<bool> expected = {false, false, false, true, true, true,
                                      false, false, false, true, true, true};
  EXPECT_EQ(pattern, expected);
}

TEST(Router, ReplicaSlowDelayTargetsOneReplica) {
  fault::FaultConfig faults;
  faults.replica_slow_ms = 30;
  faults.replica_fault_index = 1;
  fault::configure(faults);
  EXPECT_EQ(fault::replica_dispatch_delay_ms(1), 30);
  EXPECT_EQ(fault::replica_dispatch_delay_ms(0), 0);
  fault::reset();
  EXPECT_EQ(fault::replica_dispatch_delay_ms(1), 0);
}

}  // namespace
}  // namespace sdd
