// Tests for the fault-tolerant batched inference serving layer (src/serve)
// and the decode-path cancellation/fault plumbing it relies on.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/decode.hpp"
#include "nn/transformer.hpp"
#include "serve/serve.hpp"
#include "test_helpers.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace sdd {
namespace {

using namespace std::chrono_literals;
using serve::InferenceServer;
using serve::Request;
using serve::RequestState;
using serve::Response;
using serve::ServerConfig;
using testing::tiny_config;

constexpr auto kWait = 60s;  // generous terminal-state bound for CI machines

std::vector<std::int32_t> prompt_for(std::uint64_t salt) {
  return {static_cast<std::int32_t>(1 + salt % 7),
          static_cast<std::int32_t>(3 + salt % 11),
          static_cast<std::int32_t>(2 + salt % 5)};
}

Request request_for(std::uint64_t salt, std::int64_t max_new = 12) {
  Request request;
  request.prompt = prompt_for(salt);
  request.max_new_tokens = max_new;
  request.seed = 1000 + salt;
  return request;
}

std::vector<std::int32_t> reference_tokens(const nn::TransformerLM& model,
                                           const Request& request) {
  nn::GenerateOptions options;
  options.max_new_tokens = request.max_new_tokens;
  options.temperature = request.temperature;
  options.stop_token = request.stop_token;
  options.seed = request.seed;
  return nn::generate(model, request.prompt, options);
}

const Response& wait_resolved(serve::Ticket& ticket) {
  EXPECT_TRUE(ticket.wait_for(kWait)) << "request did not reach a terminal state";
  return ticket.wait();
}

TEST(Serve, SingleRequestMatchesUnloadedGenerate) {
  const nn::TransformerLM model{tiny_config(), 41};
  InferenceServer server{model, ServerConfig{}};
  const Request request = request_for(0);
  auto ticket = server.submit(request);
  const Response& response = wait_resolved(*ticket);
  EXPECT_EQ(response.state, RequestState::kCompleted);
  EXPECT_FALSE(response.error.has_value());
  EXPECT_EQ(response.tokens, reference_tokens(model, request));
}

TEST(Serve, BatchedRequestsAreBitIdenticalToUnbatched) {
  const nn::TransformerLM model{tiny_config(), 42};
  ServerConfig config;
  config.max_batch = 4;
  InferenceServer server{model, config};

  std::vector<Request> requests;
  std::vector<serve::TicketPtr> tickets;
  for (std::uint64_t i = 0; i < 6; ++i) {
    requests.push_back(request_for(i, /*max_new=*/10));
    requests.back().temperature = i % 2 == 0 ? 0.0F : 0.7F;
    tickets.push_back(server.submit(requests.back()));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Response& response = wait_resolved(*tickets[i]);
    ASSERT_EQ(response.state, RequestState::kCompleted) << response.message;
    EXPECT_EQ(response.tokens, reference_tokens(model, requests[i]))
        << "request " << i << " diverged under batching";
  }
  EXPECT_EQ(server.stats().completed, 6);
}

TEST(Serve, AdmissionControlRejectsTyped) {
  const nn::TransformerLM model{tiny_config(), 43};
  ServerConfig config;
  config.queue_capacity = 2;
  config.start_worker = false;  // keep everything queued deterministically
  InferenceServer server{model, config};

  auto a = server.submit(request_for(1));
  auto b = server.submit(request_for(2));
  auto c = server.submit(request_for(3));  // over capacity, same priority
  EXPECT_EQ(c->state(), RequestState::kRejected);
  const Response& rejected = c->wait();
  ASSERT_TRUE(rejected.error.has_value());
  EXPECT_EQ(*rejected.error, ErrorKind::kResourceExhausted);
  EXPECT_TRUE(rejected.retryable);

  server.start();
  EXPECT_EQ(wait_resolved(*a).state, RequestState::kCompleted);
  EXPECT_EQ(wait_resolved(*b).state, RequestState::kCompleted);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(Serve, ShedsLowestPriorityForHigherPriorityArrival) {
  const nn::TransformerLM model{tiny_config(), 44};
  ServerConfig config;
  config.queue_capacity = 2;
  config.start_worker = false;
  InferenceServer server{model, config};

  Request low = request_for(1);
  low.priority = 0;
  Request mid = request_for(2);
  mid.priority = 1;
  Request high = request_for(3);
  high.priority = 5;

  auto low_ticket = server.submit(low);
  auto mid_ticket = server.submit(mid);
  auto high_ticket = server.submit(high);  // queue full: sheds `low`

  EXPECT_EQ(low_ticket->state(), RequestState::kShed);
  const Response& shed = low_ticket->wait();
  ASSERT_TRUE(shed.error.has_value());
  EXPECT_EQ(*shed.error, ErrorKind::kResourceExhausted);
  EXPECT_TRUE(shed.retryable);

  // A same-or-lower priority arrival cannot shed anyone: it is rejected.
  Request another_low = request_for(4);
  another_low.priority = 1;
  auto rejected = server.submit(another_low);
  EXPECT_EQ(rejected->state(), RequestState::kRejected);

  server.start();
  EXPECT_EQ(wait_resolved(*mid_ticket).state, RequestState::kCompleted);
  EXPECT_EQ(wait_resolved(*high_ticket).state, RequestState::kCompleted);
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(Serve, ShedTieBreaksOldestOfEqualLowestPriority) {
  const nn::TransformerLM model{tiny_config(), 47};
  ServerConfig config;
  config.queue_capacity = 2;
  config.start_worker = false;
  InferenceServer server{model, config};

  Request first = request_for(11);
  first.priority = 0;
  Request second = request_for(12);
  second.priority = 0;
  auto first_ticket = server.submit(first);
  auto second_ticket = server.submit(second);
  Request high = request_for(13);
  high.priority = 3;
  auto high_ticket = server.submit(high);

  // Several queued requests tie for lowest priority: the tie-break is
  // deterministic and FIFO-fair — the OLDEST of them is shed (it has had
  // the longest shot at a slot), never an arbitrary queue position.
  EXPECT_EQ(first_ticket->state(), RequestState::kShed);
  EXPECT_EQ(second_ticket->state(), RequestState::kQueued);
  EXPECT_EQ(high_ticket->state(), RequestState::kQueued);

  server.start();
  EXPECT_EQ(wait_resolved(*second_ticket).state, RequestState::kCompleted);
  EXPECT_EQ(wait_resolved(*high_ticket).state, RequestState::kCompleted);
  EXPECT_EQ(server.stats().shed, 1);
}

TEST(Serve, WaitForZeroTimeoutIsAnExactBoundary) {
  const nn::TransformerLM model{tiny_config(), 48};
  ServerConfig config;
  config.start_worker = false;  // the request provably stays pending
  InferenceServer server{model, config};
  auto ticket = server.submit(request_for(14));

  // A zero timeout is the boundary case: wait_for must return immediately
  // with "still pending" — no block, no spurious success.
  EXPECT_FALSE(ticket->wait_for(0ms));
  EXPECT_EQ(ticket->state(), RequestState::kQueued);

  server.start();
  ASSERT_TRUE(ticket->wait_for(kWait));
  // Once terminal, the same zero timeout reports success without blocking.
  EXPECT_TRUE(ticket->wait_for(0ms));
  EXPECT_EQ(ticket->wait().state, RequestState::kCompleted);
}

TEST(Serve, DeadlineAlreadyExpiredAtAdmissionTimesOutTyped) {
  const nn::TransformerLM model{tiny_config(), 49};
  ServerConfig config;
  config.start_worker = false;
  InferenceServer server{model, config};
  Request doomed = request_for(15);
  doomed.deadline_ms = 1;
  auto ticket = server.submit(doomed);
  // Let the deadline elapse before the scheduler first sees the queue: the
  // expiry check is >=, so a deadline that lands exactly on the admission
  // instant counts as expired — zero tokens, typed timeout, never kRunning.
  std::this_thread::sleep_for(10ms);
  server.start();
  const Response& response = wait_resolved(*ticket);
  EXPECT_EQ(response.state, RequestState::kTimeout);
  ASSERT_TRUE(response.error.has_value());
  EXPECT_EQ(*response.error, ErrorKind::kTimeout);
  EXPECT_TRUE(response.tokens.empty());
  EXPECT_TRUE(response.retryable);
}

// Heavy enough that decoding its full token budget takes far longer than the
// deadlines used below, so a tight deadline provably expires before the
// request can complete (usually mid-generation, at worst while queued —
// either way it must resolve as a timeout with a partial/empty output).
nn::ModelConfig slow_config() {
  nn::ModelConfig config;
  config.vocab_size = 50;
  config.d_model = 96;
  config.n_heads = 4;
  config.n_layers = 5;
  config.d_ff = 192;
  config.max_seq_len = 160;
  return config;
}

TEST(Serve, DeadlineFreesSlotAndDeterminismSurvives) {
  const nn::TransformerLM model{slow_config(), 45};
  InferenceServer server{model, ServerConfig{}};

  // A ~few-token time budget on a long generation: the request must resolve
  // as a timeout with a *partial* result, freeing its slot mid-generation.
  Request doomed = request_for(7, /*max_new=*/120);
  doomed.deadline_ms = 5;
  auto doomed_ticket = server.submit(doomed);
  const Response& timed_out = wait_resolved(*doomed_ticket);
  EXPECT_EQ(timed_out.state, RequestState::kTimeout);
  ASSERT_TRUE(timed_out.error.has_value());
  EXPECT_EQ(*timed_out.error, ErrorKind::kTimeout);
  EXPECT_LT(static_cast<std::int64_t>(timed_out.tokens.size()),
            doomed.max_new_tokens);
  // Whatever was produced before expiry must be a prefix of the unloaded
  // output (determinism is per-request, even for aborted ones).
  const auto reference = reference_tokens(model, doomed);
  ASSERT_LE(timed_out.tokens.size(), reference.size());
  EXPECT_TRUE(std::equal(timed_out.tokens.begin(), timed_out.tokens.end(),
                         reference.begin()));

  // The next request on the same worker is bit-identical to an unloaded run.
  const Request follow_up = request_for(8);
  auto follow_ticket = server.submit(follow_up);
  const Response& followed = wait_resolved(*follow_ticket);
  ASSERT_EQ(followed.state, RequestState::kCompleted);
  EXPECT_EQ(followed.tokens, reference_tokens(model, follow_up));
}

TEST(Serve, ClientCancelFreesSlot) {
  const nn::TransformerLM model{tiny_config(), 46};
  ServerConfig config;
  config.start_worker = false;  // pin the cancel-before-decode ordering
  InferenceServer server{model, config};
  auto cancelled_ticket = server.submit(request_for(9, /*max_new=*/44));
  auto follow_ticket = server.submit(request_for(10));
  cancelled_ticket->cancel();
  server.start();

  // Client abandonment is not an error: no ErrorKind, slot freed, and the
  // request behind it is unaffected.
  const Response& response = wait_resolved(*cancelled_ticket);
  EXPECT_EQ(response.state, RequestState::kCancelled);
  EXPECT_FALSE(response.error.has_value());
  EXPECT_EQ(wait_resolved(*follow_ticket).state, RequestState::kCompleted);
  EXPECT_EQ(server.stats().cancelled, 1);
}

TEST(Serve, KvBudgetBoundsConcurrentSlots) {
  const nn::TransformerLM model{tiny_config(), 47};
  ServerConfig config;
  config.max_batch = 8;
  config.kv_budget_bytes = 2 * model.n_layers() * 2 *
                           tiny_config().max_seq_len * tiny_config().d_model *
                           static_cast<std::int64_t>(sizeof(float));
  InferenceServer server{model, config};
  EXPECT_EQ(server.current_batch_limit(), 2);

  std::vector<serve::TicketPtr> tickets;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tickets.push_back(server.submit(request_for(i)));
  }
  for (auto& ticket : tickets) {
    EXPECT_EQ(wait_resolved(*ticket).state, RequestState::kCompleted);
  }
  EXPECT_LE(server.stats().peak_active, 2);
}

TEST(Serve, AllocFailureDegradesInsteadOfCrashing) {
  const nn::TransformerLM model{tiny_config(), 48};
  ServerConfig config;
  config.start_worker = false;
  InferenceServer server{model, config};

  // After configure() the allocation counter is zero, so the very next
  // guarded allocation — the first decode slot — fails.
  fault::FaultConfig faults;
  faults.alloc_fail_at = 0;
  fault::configure(faults);

  auto first = server.submit(request_for(1));
  auto second = server.submit(request_for(2));
  server.start();

  const Response& failed = wait_resolved(*first);
  EXPECT_EQ(failed.state, RequestState::kRejected);
  ASSERT_TRUE(failed.error.has_value());
  EXPECT_EQ(*failed.error, ErrorKind::kResourceExhausted);
  EXPECT_TRUE(failed.retryable);

  // The injector is one-shot: the server keeps serving afterwards.
  const Response& ok = wait_resolved(*second);
  EXPECT_EQ(ok.state, RequestState::kCompleted);
  fault::reset();
}

TEST(Serve, NanLogitsFailTypedAndServingContinues) {
  const nn::TransformerLM model{tiny_config(), 49};
  ServerConfig config;
  config.start_worker = false;
  InferenceServer server{model, config};

  fault::FaultConfig faults;
  faults.nan_decode = 2;  // poison the third decode token
  fault::configure(faults);

  auto poisoned = server.submit(request_for(1, /*max_new=*/10));
  auto clean = server.submit(request_for(2, /*max_new=*/10));
  server.start();

  const Response& failed = wait_resolved(*poisoned);
  EXPECT_EQ(failed.state, RequestState::kFailed);
  ASSERT_TRUE(failed.error.has_value());
  EXPECT_EQ(*failed.error, ErrorKind::kNumericDivergence);

  const Response& ok = wait_resolved(*clean);
  ASSERT_EQ(ok.state, RequestState::kCompleted);
  EXPECT_EQ(ok.tokens, reference_tokens(model, request_for(2, 10)));
  fault::reset();
}

TEST(Serve, HungDecodeIsRecycledByWatchdog) {
  const nn::TransformerLM model{tiny_config(), 50};
  ServerConfig config;
  config.start_worker = false;
  config.worker.hang_ms = 200;  // heartbeat-silence watchdog
  InferenceServer server{model, config};

  fault::FaultConfig faults;
  faults.hang_decode = 0;  // the first request's first decode round hangs
  faults.hang_cap_ms = 10'000;
  fault::configure(faults);

  auto hung = server.submit(request_for(1, /*max_new=*/10));
  auto survivor = server.submit(request_for(2, /*max_new=*/10));
  server.start();

  const Response& failed = wait_resolved(*hung);
  EXPECT_EQ(failed.state, RequestState::kFailed);
  ASSERT_TRUE(failed.error.has_value());
  EXPECT_EQ(*failed.error, ErrorKind::kTimeout);

  // The other slot survives the stage recycle and still decodes correctly.
  const Response& ok = wait_resolved(*survivor);
  ASSERT_EQ(ok.state, RequestState::kCompleted) << ok.message;
  EXPECT_EQ(ok.tokens, reference_tokens(model, request_for(2, 10)));
  EXPECT_GE(server.stats().worker_recycles, 1);
  fault::reset();
}

TEST(Serve, OverloadDegradesTokenBudget) {
  const nn::TransformerLM model{tiny_config(), 51};
  ServerConfig config;
  config.queue_capacity = 8;
  config.degrade_queue_depth = 2;
  config.degrade_max_new_tokens = 3;
  config.start_worker = false;
  InferenceServer server{model, config};

  std::vector<Request> requests;
  std::vector<serve::TicketPtr> tickets;
  for (std::uint64_t i = 0; i < 6; ++i) {
    requests.push_back(request_for(i, /*max_new=*/20));
    tickets.push_back(server.submit(requests.back()));
  }
  server.start();

  bool any_degraded = false;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Response& response = wait_resolved(*tickets[i]);
    ASSERT_EQ(response.state, RequestState::kCompleted);
    const auto reference = reference_tokens(model, requests[i]);
    if (response.degraded) {
      any_degraded = true;
      EXPECT_LE(static_cast<std::int64_t>(response.tokens.size()), 3);
      // Degraded output is a prefix of the full unloaded output.
      ASSERT_LE(response.tokens.size(), reference.size());
      EXPECT_TRUE(std::equal(response.tokens.begin(), response.tokens.end(),
                             reference.begin()));
    } else {
      EXPECT_EQ(response.tokens, reference);
    }
  }
  EXPECT_TRUE(any_degraded);
  EXPECT_GE(server.stats().degraded, 1);
}

TEST(Serve, ShutdownResolvesEverything) {
  const nn::TransformerLM model{tiny_config(), 52};
  ServerConfig config;
  config.start_worker = false;
  InferenceServer server{model, config};
  auto a = server.submit(request_for(1));
  auto b = server.submit(request_for(2));
  server.shutdown();  // worker never ran: queued requests must still resolve
  EXPECT_EQ(a->wait().state, RequestState::kCancelled);
  EXPECT_EQ(b->wait().state, RequestState::kCancelled);
  auto late = server.submit(request_for(3));
  EXPECT_EQ(late->wait().state, RequestState::kRejected);
}

TEST(Serve, ChaosOverloadEveryRequestResolves) {
  const nn::TransformerLM model{tiny_config(), 53};
  ServerConfig config;
  config.queue_capacity = 4;
  config.max_batch = 2;
  config.degrade_max_new_tokens = 4;
  InferenceServer server{model, config};

  // 4x queue-capacity offered load from concurrent clients with mixed
  // priorities and deadlines; every ticket must reach a terminal state.
  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::mutex tickets_mutex;
  std::vector<serve::TicketPtr> tickets;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        Request request = request_for(static_cast<std::uint64_t>(c * 13 + r),
                                      /*max_new=*/8);
        request.priority = (c + r) % 3;
        request.deadline_ms = r % 2 == 0 ? 0 : 2000;
        auto ticket = server.submit(std::move(request));
        const std::lock_guard<std::mutex> lock{tickets_mutex};
        tickets.push_back(std::move(ticket));
      }
    });
  }
  for (auto& client : clients) client.join();

  std::set<RequestState> seen;
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket->wait_for(kWait));
    const Response& response = ticket->wait();
    EXPECT_TRUE(serve::request_state_terminal(response.state));
    if (response.state != RequestState::kCompleted &&
        response.state != RequestState::kCancelled) {
      EXPECT_TRUE(response.error.has_value());
    }
    seen.insert(response.state);
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

// ---- decode-path plumbing the server depends on ---------------------------

TEST(Serve, CancelTokenStopsGenerateWithPartialOutput) {
  const nn::TransformerLM model{tiny_config(), 54};
  const auto prompt = prompt_for(3);

  nn::GenerateOptions options;
  options.max_new_tokens = 12;
  const auto full = nn::generate(model, prompt, options);
  ASSERT_GT(full.size(), 0U);

  // Pre-cancelled token: nothing is generated.
  options.cancel = CancelToken::make();
  options.cancel.cancel();
  EXPECT_TRUE(nn::generate(model, prompt, options).empty());

  // An already-expired deadline behaves the same, through the deadline path.
  options.cancel = CancelToken::with_deadline(std::chrono::milliseconds{0});
  std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(options.cancel.cancelled());
  EXPECT_EQ(options.cancel.reason(), std::string{"deadline exceeded"});
  EXPECT_TRUE(nn::generate(model, prompt, options).empty());

  // An empty token is free and changes nothing.
  options.cancel = CancelToken{};
  EXPECT_EQ(nn::generate(model, prompt, options), full);
}

TEST(Serve, CancelTokenAbortsSequenceLogprobTyped) {
  const nn::TransformerLM model{tiny_config(), 55};
  const std::vector<std::int32_t> prompt = {1, 2, 3};
  const std::vector<std::int32_t> continuation = {4, 5};

  CancelToken cancel = CancelToken::make();
  cancel.cancel();
  try {
    nn::sequence_logprob(model, prompt, continuation, cancel);
    FAIL() << "expected Error{timeout}";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTimeout);
  }
  // Without a token the result is unchanged.
  const double lp = nn::sequence_logprob(model, prompt, continuation);
  EXPECT_TRUE(std::isfinite(lp));
}

TEST(Serve, ErrorExitCodesAreDistinctAndStable) {
  const std::vector<ErrorKind> kinds = {
      ErrorKind::kTransientIo,       ErrorKind::kCorruptArtifact,
      ErrorKind::kNumericDivergence, ErrorKind::kTimeout,
      ErrorKind::kResourceExhausted, ErrorKind::kFatal,
  };
  std::set<int> codes;
  for (const ErrorKind kind : kinds) {
    const int code = error_kind_exit_code(kind);
    EXPECT_NE(code, 0);
    EXPECT_NE(code, 1);   // reserved: non-taxonomy exceptions
    EXPECT_NE(code, 2);   // reserved: CLI usage errors
    EXPECT_NE(code, 64);  // reserved: malformed SDD_FAULT (EX_USAGE)
    codes.insert(code);
  }
  EXPECT_EQ(codes.size(), kinds.size()) << "exit codes must be distinct";
  EXPECT_EQ(error_kind_exit_code(ErrorKind::kCorruptArtifact), 65);
  EXPECT_EQ(error_kind_exit_code(ErrorKind::kResourceExhausted), 69);
}

TEST(Serve, FaultSpecParsesNewDirectives) {
  const fault::FaultConfig config = fault::parse_fault_spec(
      "alloc_fail:at=4,hang_decode:7,nan_decode:9");
  EXPECT_EQ(config.alloc_fail_at, 4);
  EXPECT_EQ(config.hang_decode, 7);
  EXPECT_EQ(config.nan_decode, 9);
  EXPECT_TRUE(config.any());
  // Short form without "at=".
  EXPECT_EQ(fault::parse_fault_spec("alloc_fail:2").alloc_fail_at, 2);
  EXPECT_THROW(fault::parse_fault_spec("alloc_fail:at=x"),
               std::invalid_argument);
}

TEST(ServeConcurrency, SharedConstModelGenerateIsDeterministic) {
  const nn::TransformerLM model{tiny_config(), 56};
  const auto prompt = prompt_for(5);
  nn::GenerateOptions options;
  options.max_new_tokens = 10;
  options.temperature = 0.5F;
  options.seed = 77;
  const auto reference = nn::generate(model, prompt, options);

  // The serving layer assumes a const TransformerLM is safely shareable:
  // N threads decoding the same prompt+seed must agree bit for bit (and run
  // clean under TSan).
  constexpr int kThreads = 4;
  std::vector<std::vector<std::int32_t>> outputs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      outputs[static_cast<std::size_t>(t)] = nn::generate(model, prompt, options);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& output : outputs) EXPECT_EQ(output, reference);
}

TEST(ServeConcurrency, SharedConstModelLogprobIsDeterministic) {
  const nn::TransformerLM model{tiny_config(), 57};
  const std::vector<std::int32_t> prompt = {2, 4, 6};
  const std::vector<std::int32_t> continuation = {1, 3};
  const double reference = nn::sequence_logprob(model, prompt, continuation);

  constexpr int kThreads = 4;
  std::vector<double> outputs(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      outputs[static_cast<std::size_t>(t)] =
          nn::sequence_logprob(model, prompt, continuation);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const double output : outputs) EXPECT_EQ(output, reference);
}

}  // namespace
}  // namespace sdd
