// Self-speculative decoding: the substrate (decode_span, KV rollback,
// gemm_nt_rowwise) must be bitwise-identical to the sequential decode path,
// and the draft-and-verify loop — standalone, behind an InferenceServer,
// and behind a VariantRouter with draft pairing — must emit byte-identical
// output to the target's plain greedy decode at every prune depth, every k,
// and under injected rejection storms and draft NaNs.
#include <algorithm>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "nn/decode.hpp"
#include "nn/speculative.hpp"
#include "nn/transformer.hpp"
#include "serve/router.hpp"
#include "serve/serve.hpp"
#include "tensor/kernels.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace sdd {
namespace {

using namespace std::chrono_literals;
using nn::TransformerLM;
using testing::tiny_config;

constexpr auto kWait = 60s;

std::vector<std::int32_t> test_prompt(std::uint64_t index = 0) {
  return {static_cast<std::int32_t>(1 + index % 11),
          static_cast<std::int32_t>(3 + index % 7),
          static_cast<std::int32_t>(5 + index % 17)};
}

nn::GenerateOptions greedy_options(std::int64_t max_new = 12) {
  nn::GenerateOptions options;
  options.max_new_tokens = max_new;
  options.temperature = 0.0F;
  return options;
}

// ---- substrate: batched verify must be bitwise-equal to sequential decode --

TEST(Spec, GemmNtRowwiseBitwiseMatchesSingleRowCalls) {
  const std::int64_t m = 5, k = 19, n = 7;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(n * k));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.1F * static_cast<float>(i % 13) - 0.3F;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.07F * static_cast<float>(i % 17) - 0.5F;
  }
  std::vector<float> batched(static_cast<std::size_t>(m * n), -1.0F);
  kernels::gemm_nt_rowwise(a.data(), b.data(), batched.data(), m, k, n, false);
  for (std::int64_t row = 0; row < m; ++row) {
    std::vector<float> single(static_cast<std::size_t>(n), -1.0F);
    // The m=1 gemm_nt shape is exactly what decode_step uses per token.
    kernels::gemm_nt(a.data() + row * k, b.data(), single.data(), 1, k, n,
                     false);
    for (std::int64_t col = 0; col < n; ++col) {
      EXPECT_EQ(batched[static_cast<std::size_t>(row * n + col)],
                single[static_cast<std::size_t>(col)])
          << "row " << row << " col " << col << " not bitwise equal";
    }
  }
}

TEST(Spec, DecodeSpanBitwiseMatchesSequentialDecodeSteps) {
  const TransformerLM model{tiny_config(3), 71};
  const std::vector<std::int32_t> tokens{4, 9, 1, 22, 13, 7};

  TransformerLM::DecodeState sequential = model.make_decode_state();
  std::vector<std::vector<float>> step_logits;
  for (const std::int32_t token : tokens) {
    step_logits.push_back(model.decode_step(sequential, token));
  }

  TransformerLM::DecodeState spanned = model.make_decode_state();
  const std::vector<float> rows = model.decode_span(spanned, tokens);
  const auto vocab = static_cast<std::size_t>(model.config().vocab_size);
  ASSERT_EQ(rows.size(), tokens.size() * vocab);
  ASSERT_EQ(spanned.position, sequential.position);
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    for (std::size_t v = 0; v < vocab; ++v) {
      ASSERT_EQ(rows[t * vocab + v], step_logits[t][v])
          << "token " << t << " logit " << v << " not bitwise equal";
    }
  }
}

TEST(Spec, DecodeSpanAfterPrefixMatchesContinuedSteps) {
  // Mixed mode, the exact shape the verify loop uses: sequential prefill,
  // then a batched span in the middle of the stream.
  const TransformerLM model{tiny_config(3), 72};
  TransformerLM::DecodeState sequential = model.make_decode_state();
  TransformerLM::DecodeState spanned = model.make_decode_state();
  for (const std::int32_t token : test_prompt()) {
    model.decode_step(sequential, token);
    model.decode_step(spanned, token);
  }
  const std::vector<std::int32_t> span{8, 2, 31};
  std::vector<std::vector<float>> step_logits;
  for (const std::int32_t token : span) {
    step_logits.push_back(model.decode_step(sequential, token));
  }
  const std::vector<float> rows = model.decode_span(spanned, span);
  const auto vocab = static_cast<std::size_t>(model.config().vocab_size);
  for (std::size_t t = 0; t < span.size(); ++t) {
    for (std::size_t v = 0; v < vocab; ++v) {
      ASSERT_EQ(rows[t * vocab + v], step_logits[t][v]);
    }
  }
}

TEST(Spec, RollbackReplaysBitwiseIdentically) {
  const TransformerLM model{tiny_config(3), 73};
  TransformerLM::DecodeState state = model.make_decode_state();
  for (const std::int32_t token : test_prompt()) {
    model.decode_step(state, token);
  }
  const std::int64_t base = state.position;
  const std::vector<float> original = model.decode_step(state, 17);

  // Rejected-tail shape: feed a different continuation, rewind, re-feed.
  model.decode_step(state, 23);
  model.decode_step(state, 5);
  state.rollback(base);
  EXPECT_EQ(state.position, base);
  const std::vector<float> replayed = model.decode_step(state, 17);
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(replayed[i], original[i]) << "logit " << i << " differs";
  }
}

TEST(Spec, RollbackValidatesTarget) {
  const TransformerLM model{tiny_config(2), 74};
  TransformerLM::DecodeState state = model.make_decode_state();
  model.decode_step(state, 1);
  model.decode_step(state, 2);
  EXPECT_THROW(state.rollback(-1), std::invalid_argument);
  EXPECT_THROW(state.rollback(state.position + 1), std::invalid_argument);
  state.rollback(0);  // full rewind is legal
  EXPECT_EQ(state.position, 0);
}

TEST(Spec, DecodeSpanValidatesInput) {
  const TransformerLM model{tiny_config(2), 75};
  TransformerLM::DecodeState state = model.make_decode_state();
  EXPECT_TRUE(model.decode_span(state, {}).empty());
  const std::vector<std::int32_t> bad{-1};
  EXPECT_THROW(model.decode_span(state, bad), std::invalid_argument);
  const std::vector<std::int32_t> over(
      static_cast<std::size_t>(model.config().max_seq_len) + 1, 1);
  EXPECT_THROW(model.decode_span(state, over), std::logic_error);
}

// ---- the speculative loop: bit-identity at every depth, k, and fault -------

TEST(Spec, GenerateBitIdenticalAcrossPruneDepthsAndK) {
  const TransformerLM target{tiny_config(4), 81};
  const std::vector<std::int32_t> prompt = test_prompt();
  const nn::GenerateOptions options = greedy_options(14);
  const auto reference = nn::generate(target, prompt, options);

  std::vector<TransformerLM> drafts;
  drafts.push_back(target.clone());      // acceptance ceiling
  drafts.push_back(target.pruned(2, 1));  // depth 1
  drafts.push_back(target.pruned(1, 2));  // depth 2
  for (const TransformerLM& draft : drafts) {
    for (const std::int64_t k : {1, 3, 4, 7}) {  // k=1, odd, even, > budget/2
      const auto output =
          nn::speculative_generate(target, draft, prompt, options, k);
      EXPECT_EQ(output, reference)
          << "diverged with draft depth " << target.n_layers() - draft.n_layers()
          << ", k=" << k;
    }
  }
}

TEST(Spec, SelfDraftAcceptsEveryProposal) {
  const TransformerLM target{tiny_config(3), 82};
  nn::SpecCounters counters;
  const auto output = nn::speculative_generate(
      target, target, test_prompt(), greedy_options(12), 4, &counters);
  EXPECT_EQ(output, nn::generate(target, test_prompt(), greedy_options(12)));
  EXPECT_GT(counters.proposed, 0);
  EXPECT_EQ(counters.accepted, counters.proposed);
  EXPECT_DOUBLE_EQ(counters.acceptance_rate(), 1.0);
  EXPECT_EQ(counters.corrections, 0);
  EXPECT_GT(counters.bonus, 0);
}

TEST(Spec, CountersBalanceExactly) {
  const TransformerLM target{tiny_config(4), 83};
  const TransformerLM draft = target.pruned(1, 2);
  nn::SpecCounters counters;
  const std::int64_t budget = 13;
  const auto output = nn::speculative_generate(
      target, draft, test_prompt(), greedy_options(budget), 3, &counters);
  // No stop token: the budget is hit exactly, and every emitted token is
  // accounted to exactly one counter bucket.
  EXPECT_EQ(static_cast<std::int64_t>(output.size()), budget);
  EXPECT_EQ(counters.emitted(), budget);
  EXPECT_EQ(counters.rounds, counters.corrections + counters.bonus + counters.solo);
  EXPECT_LE(counters.accepted, counters.proposed);
}

TEST(Spec, RejectionStormAtPositionZeroPreservesBytes) {
  const TransformerLM target{tiny_config(3), 84};
  fault::FaultConfig faults;
  faults.spec_reject_p = 1.0;  // every proposal corrupted: reject at pos 0
  fault::configure(faults);
  nn::SpecCounters counters;
  const auto output = nn::speculative_generate(
      target, target, test_prompt(), greedy_options(10), 4, &counters);
  fault::reset();
  // A self-draft proposes the target's own argmax; corruption shifts it off
  // by one, so nothing can be accepted — yet the output must not change.
  EXPECT_EQ(output, nn::generate(target, test_prompt(), greedy_options(10)));
  EXPECT_EQ(counters.accepted, 0);
  EXPECT_GT(counters.corrections, 0);
  EXPECT_EQ(counters.bonus, 0);
}

TEST(Spec, PartialRejectionStormPreservesBytes) {
  const TransformerLM target{tiny_config(4), 85};
  const TransformerLM draft = target.pruned(2, 1);
  const auto reference = nn::generate(target, test_prompt(), greedy_options(14));
  fault::FaultConfig faults;
  faults.spec_reject_p = 0.5;
  fault::configure(faults);
  for (const std::int64_t k : {1, 3, 4}) {
    EXPECT_EQ(nn::speculative_generate(target, draft, test_prompt(),
                                       greedy_options(14), k),
              reference)
        << "partial storm diverged at k=" << k;
  }
  fault::reset();
}

TEST(Spec, DraftNanDegradesRoundWithoutFailing) {
  const TransformerLM target{tiny_config(3), 86};
  fault::FaultConfig faults;
  faults.draft_nan = 5;  // past the prompt prefill rows, inside a proposal
  fault::configure(faults);
  nn::SpecCounters counters;
  const auto output = nn::speculative_generate(
      target, target, test_prompt(), greedy_options(12), 4, &counters);
  fault::reset();
  EXPECT_EQ(output, nn::generate(target, test_prompt(), greedy_options(12)));
  EXPECT_GE(counters.draft_fallbacks, 1);
  EXPECT_GE(counters.solo, counters.draft_fallbacks);
}

TEST(Spec, StopTokenEndsGenerationIdentically) {
  const TransformerLM target{tiny_config(3), 87};
  const TransformerLM draft = target.pruned(1, 1);
  const auto unbounded = nn::generate(target, test_prompt(), greedy_options(12));
  ASSERT_GE(unbounded.size(), 4U);
  // Stop on a token the greedy stream actually emits, so the stop fires
  // mid-round for the speculative decoder.
  nn::GenerateOptions options = greedy_options(12);
  options.stop_token = unbounded[3];
  const auto reference = nn::generate(target, test_prompt(), options);
  EXPECT_EQ(nn::speculative_generate(target, draft, test_prompt(), options, 4),
            reference);
}

TEST(Spec, RejectsInvalidSessions) {
  const TransformerLM target{tiny_config(3), 88};
  EXPECT_THROW(nn::speculative_generate(target, target, {}, greedy_options(), 4),
               std::invalid_argument);
  nn::GenerateOptions sampled = greedy_options();
  sampled.temperature = 0.7F;
  EXPECT_THROW(nn::speculative_generate(target, target, test_prompt(), sampled, 4),
               std::invalid_argument);

  nn::ModelConfig other_vocab = tiny_config(2);
  other_vocab.vocab_size = 32;
  const TransformerLM mismatched{other_vocab, 89};
  EXPECT_THROW(nn::SpeculativeSession(target, mismatched, 4),
               std::invalid_argument);

  nn::ModelConfig short_ctx = tiny_config(2);
  short_ctx.max_seq_len = tiny_config().max_seq_len / 2;
  const TransformerLM narrow{short_ctx, 90};
  EXPECT_THROW(nn::SpeculativeSession(target, narrow, 4),
               std::invalid_argument);
}

TEST(Spec, FaultSpecParsesSpeculativeDirectives) {
  const fault::FaultConfig storm = fault::parse_fault_spec("spec_reject_storm");
  EXPECT_DOUBLE_EQ(storm.spec_reject_p, 1.0);
  const fault::FaultConfig half =
      fault::parse_fault_spec("spec_reject_storm:p=0.5");
  EXPECT_DOUBLE_EQ(half.spec_reject_p, 0.5);
  const fault::FaultConfig nan = fault::parse_fault_spec("draft_nan:7");
  EXPECT_EQ(nan.draft_nan, 7);
  EXPECT_TRUE(storm.any());
  EXPECT_TRUE(nan.any());
  EXPECT_THROW(fault::parse_fault_spec("spec_reject_storm:p=nope"),
               std::invalid_argument);
}

// ---- serving integration ---------------------------------------------------

serve::Request spec_request(std::uint64_t index, std::int64_t max_new = 10) {
  serve::Request request;
  request.prompt = test_prompt(index);
  request.max_new_tokens = max_new;
  request.temperature = 0.0F;
  request.task = index % 2 == 0 ? "even" : "odd";
  return request;
}

TEST(SpecServe, SpeculativeServerBitIdenticalToPlainGreedy) {
  const TransformerLM model{tiny_config(4), 91};
  const TransformerLM draft = model.pruned(1, 2);
  serve::ServerConfig config;
  config.spec_k = 4;
  serve::InferenceServer server{model, config, &draft};
  ASSERT_TRUE(server.speculative());

  std::vector<serve::Request> requests;
  std::vector<serve::TicketPtr> tickets;
  for (std::uint64_t i = 0; i < 5; ++i) {
    requests.push_back(spec_request(i));
    tickets.push_back(server.submit(requests[i]));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i]->wait_for(kWait));
    const serve::Response& response = tickets[i]->wait();
    ASSERT_EQ(response.state, serve::RequestState::kCompleted)
        << response.message;
    nn::GenerateOptions options = greedy_options(requests[i].max_new_tokens);
    options.stop_token = requests[i].stop_token;
    EXPECT_EQ(response.tokens, nn::generate(model, requests[i].prompt, options))
        << "request " << i << " diverged under speculative serving";
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.spec_requests, 5);
  EXPECT_GT(stats.spec.rounds, 0);
  EXPECT_EQ(stats.spec.emitted(), 5 * 10);
}

TEST(SpecServe, PerTaskAcceptanceCountersPartitionTheAggregate) {
  const TransformerLM model{tiny_config(3), 92};
  serve::ServerConfig config;
  config.spec_k = 3;
  serve::InferenceServer server{model, config, &model};  // self-draft
  std::vector<serve::TicketPtr> tickets;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tickets.push_back(server.submit(spec_request(i)));
  }
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket->wait_for(kWait));
    ASSERT_EQ(ticket->wait().state, serve::RequestState::kCompleted);
  }
  const serve::ServerStats stats = server.stats();
  ASSERT_EQ(stats.spec_by_task.count("even"), 1U);
  ASSERT_EQ(stats.spec_by_task.count("odd"), 1U);
  const nn::SpecCounters& even = stats.spec_by_task.at("even");
  const nn::SpecCounters& odd = stats.spec_by_task.at("odd");
  EXPECT_EQ(even.emitted() + odd.emitted(), stats.spec.emitted());
  EXPECT_EQ(even.proposed + odd.proposed, stats.spec.proposed);
  // Self-draft, no faults: acceptance is total in every bucket.
  EXPECT_DOUBLE_EQ(stats.spec.acceptance_rate(), 1.0);
}

TEST(SpecServe, SampledRequestsBypassTheDraft) {
  const TransformerLM model{tiny_config(3), 93};
  const TransformerLM draft = model.pruned(1, 1);
  serve::ServerConfig config;
  config.spec_k = 4;
  serve::InferenceServer server{model, config, &draft};
  serve::Request request = spec_request(0);
  request.temperature = 0.8F;
  request.seed = 777;
  auto ticket = server.submit(request);
  ASSERT_TRUE(ticket->wait_for(kWait));
  const serve::Response& response = ticket->wait();
  ASSERT_EQ(response.state, serve::RequestState::kCompleted);
  nn::GenerateOptions options = greedy_options(request.max_new_tokens);
  options.temperature = request.temperature;
  options.seed = request.seed;
  EXPECT_EQ(response.tokens, nn::generate(model, request.prompt, options));
  EXPECT_EQ(server.stats().spec_requests, 0);
}

TEST(SpecServe, SpeculativeSlotSurvivesRejectionStorm) {
  const TransformerLM model{tiny_config(3), 94};
  fault::FaultConfig faults;
  faults.spec_reject_p = 1.0;
  fault::configure(faults);
  serve::ServerConfig config;
  config.spec_k = 4;
  serve::InferenceServer server{model, config, &model};
  const serve::Request request = spec_request(1);
  auto ticket = server.submit(request);
  ASSERT_TRUE(ticket->wait_for(kWait));
  const serve::Response& response = ticket->wait();
  server.shutdown();
  const serve::ServerStats stats = server.stats();
  fault::reset();
  ASSERT_EQ(response.state, serve::RequestState::kCompleted);
  nn::GenerateOptions options = greedy_options(request.max_new_tokens);
  EXPECT_EQ(response.tokens, nn::generate(model, request.prompt, options));
  EXPECT_EQ(stats.spec.accepted, 0);  // storm: nothing accepted, bytes intact
}

TEST(SpecServe, KvSlotBytesIncludeTheDraftCache) {
  const TransformerLM model{tiny_config(4), 95};
  const TransformerLM draft = model.pruned(1, 2);
  serve::ServerConfig config;
  serve::InferenceServer plain{model, config};
  config.spec_k = 4;
  serve::InferenceServer spec{model, config, &draft};
  EXPECT_GT(spec.kv_slot_bytes(), plain.kv_slot_bytes());
  // Draft present but spec_k = 0: speculation off, no draft KV charge.
  serve::ServerConfig off;
  serve::InferenceServer disabled{model, off, &draft};
  EXPECT_FALSE(disabled.speculative());
  EXPECT_EQ(disabled.kv_slot_bytes(), plain.kv_slot_bytes());
}

TEST(SpecRouter, DraftPairingKeepsRoutedOutputsBitIdentical) {
  const TransformerLM full{tiny_config(4), 96};
  serve::RouterConfig config;
  config.spec_draft = "p2";
  config.server.spec_k = 4;
  std::vector<serve::VariantSpec> variants;
  variants.push_back({"full", full.clone(), 0.9, "", 0});
  variants.push_back({"p2", full.pruned(1, 2), 0.55, "", 0});
  serve::VariantRouter router{std::move(variants), config};

  std::vector<serve::RouteTicketPtr> tickets;
  for (std::uint64_t i = 0; i < 4; ++i) {
    serve::RouteRequest route;
    route.request = spec_request(i);
    route.request.task.clear();  // route-level label must reach the server
    route.task = "spec";
    route.variant = "full";
    tickets.push_back(router.submit(std::move(route)));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto& ticket = *tickets[i];
    ASSERT_TRUE(ticket.wait_for(kWait));
    const serve::RouteResponse& routed = ticket.wait();
    ASSERT_EQ(routed.response.state, serve::RequestState::kCompleted)
        << routed.response.message;
    ASSERT_EQ(routed.variant, "full");
    EXPECT_EQ(routed.response.tokens,
              nn::generate(full, test_prompt(i), greedy_options(10)));
  }
  bool saw_draft_flag = false;
  for (const serve::ReplicaSnapshot& snap : router.replicas()) {
    if (snap.name == "p2") saw_draft_flag = snap.drafts;
    if (snap.name == "full") {
      EXPECT_EQ(snap.server.spec_requests, 4);
      // The route-level task label must reach the per-task breakdown.
      EXPECT_EQ(snap.server.spec_by_task.count("spec"), 1U);
    }
  }
  EXPECT_TRUE(saw_draft_flag);
}

TEST(SpecRouter, UnknownDraftVariantFailsLoudly) {
  const TransformerLM full{tiny_config(3), 97};
  serve::RouterConfig config;
  config.spec_draft = "nope";
  config.server.spec_k = 4;
  std::vector<serve::VariantSpec> variants;
  variants.push_back({"full", full.clone(), 0.9, "", 0});
  EXPECT_THROW(serve::VariantRouter(std::move(variants), config), Error);
}

}  // namespace
}  // namespace sdd
