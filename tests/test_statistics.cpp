// Statistical and structural checks of the corpus mixture and a few edge
// cases in the attention geometry and decode-state lifecycle.
#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "tensor/kernels.hpp"
#include "test_helpers.hpp"

namespace sdd {
namespace {

TEST(CorpusStats, MathShareTracksMixtureWeights) {
  const data::World world{42};
  data::CorpusConfig config;
  config.n_documents = 2000;
  const auto stream = data::build_pretraining_stream(world, config);
  const data::Vocab& vocab = data::Vocab::instance();

  // "compute" only appears in solved math problems (w_math_qa of documents).
  const data::TokenId compute = vocab.id("compute");
  const data::TokenId bos = vocab.bos();
  std::int64_t docs = 0, math_docs = 0;
  bool current_has_compute = false;
  for (const data::TokenId token : stream) {
    if (token == bos) {
      ++docs;
      if (current_has_compute) ++math_docs;
      current_has_compute = false;
    }
    if (token == compute) current_has_compute = true;
  }
  if (current_has_compute) ++math_docs;
  const double share = static_cast<double>(math_docs) / static_cast<double>(docs);
  EXPECT_NEAR(share, config.w_math_qa, 0.05);
}

TEST(CorpusStats, MythRateControlsMisconceptionExposure) {
  // Color documents are either "fact : the X is C ." or "people say the X is
  // W ."; the word "people" marks the misconception variant and "fact" the
  // true one (neither word appears in any other corpus template).
  const data::World world{42};
  data::CorpusConfig config;
  config.n_documents = 8000;
  config.myth_rate = 0.3;
  const auto stream = data::build_pretraining_stream(world, config);
  const data::Vocab& vocab = data::Vocab::instance();
  const data::TokenId people = vocab.id("people");
  const data::TokenId fact = vocab.id("fact");
  std::int64_t myth_docs = 0, fact_docs = 0;
  for (const data::TokenId token : stream) {
    if (token == people) ++myth_docs;
    if (token == fact) ++fact_docs;
  }
  ASSERT_GT(myth_docs + fact_docs, 50);
  const double ratio = static_cast<double>(myth_docs) /
                       static_cast<double>(myth_docs + fact_docs);
  EXPECT_NEAR(ratio, config.myth_rate, 0.10);
}

TEST(CorpusStats, CalibrationIsDeterministicPerSeed) {
  const data::World world{42};
  const auto a = data::build_calibration_set(world, 4, 32, 11);
  const auto b = data::build_calibration_set(world, 4, 32, 11);
  const auto c = data::build_calibration_set(world, 4, 32, 12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(AttentionGeometry, OddHeadDimLeavesLastComponentUnrotated) {
  // rope_apply rotates pairs (2i, 2i+1); with an odd head_dim the final
  // component must pass through unchanged.
  std::vector<float> v{1.0F, 2.0F, 3.0F, 4.0F, 5.0F};
  const float last = v.back();
  kernels::rope_apply(v.data(), 1, 5, /*pos=*/3, 10000.0F, 1.0F);
  EXPECT_FLOAT_EQ(v.back(), last);
}

TEST(DecodeState, ResetReplaysIdenticalLogits) {
  const nn::TransformerLM model{testing::tiny_config(2), 91};
  auto state = model.make_decode_state();
  const auto first = model.decode_step(state, 1);
  (void)model.decode_step(state, 2);
  state.reset();
  const auto replay = model.decode_step(state, 1);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_FLOAT_EQ(first[i], replay[i]);
  }
}

TEST(DecodeState, OverflowingContextThrows) {
  nn::ModelConfig config = testing::tiny_config(1);
  config.max_seq_len = 4;
  const nn::TransformerLM model{config, 92};
  auto state = model.make_decode_state();
  for (int t = 0; t < 4; ++t) (void)model.decode_step(state, 1);
  EXPECT_THROW((void)model.decode_step(state, 1), std::logic_error);
}

}  // namespace
}  // namespace sdd
