// Semantics of the stage supervisor (util/supervisor) and the error taxonomy
// (util/error): retry-until-success, fail-fast on non-retryable kinds,
// deterministic backoff under a fake clock, deadline and hang watchdogs, and
// zero-machinery execution when supervision is disabled.
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/supervisor.hpp"

namespace sdd {
namespace {

using supervisor::SupervisorConfig;
using supervisor::StageReport;
using namespace std::chrono_literals;

SupervisorConfig fake_clock_config(std::vector<std::int64_t>* slept) {
  SupervisorConfig config;
  config.sleep_fn = [slept](std::chrono::milliseconds delay) {
    slept->push_back(delay.count());
  };
  return config;
}

TEST(ErrorTaxonomy, KindNamesAreStable) {
  EXPECT_EQ(error_kind_name(ErrorKind::kTransientIo), "transient_io");
  EXPECT_EQ(error_kind_name(ErrorKind::kCorruptArtifact), "corrupt_artifact");
  EXPECT_EQ(error_kind_name(ErrorKind::kNumericDivergence),
            "numeric_divergence");
  EXPECT_EQ(error_kind_name(ErrorKind::kTimeout), "timeout");
  EXPECT_EQ(error_kind_name(ErrorKind::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(error_kind_name(ErrorKind::kFatal), "fatal");
}

TEST(ErrorTaxonomy, RetryableClassification) {
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kTransientIo));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kCorruptArtifact));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kTimeout));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::kResourceExhausted));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kNumericDivergence));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::kFatal));
}

TEST(ErrorTaxonomy, MessageCarriesKindPrefix) {
  const Error error{ErrorKind::kTransientIo, "disk went away"};
  EXPECT_EQ(error.kind(), ErrorKind::kTransientIo);
  EXPECT_TRUE(error.retryable());
  EXPECT_NE(std::string{error.what()}.find("transient_io"), std::string::npos);
  EXPECT_NE(std::string{error.what()}.find("disk went away"), std::string::npos);
}

TEST(SupervisorBackoff, DeterministicForSameInputs) {
  SupervisorConfig config;
  for (std::int64_t attempt = 0; attempt < 5; ++attempt) {
    const std::int64_t a = supervisor::backoff_delay_ms(config, "stage", attempt);
    const std::int64_t b = supervisor::backoff_delay_ms(config, "stage", attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
  }
}

TEST(SupervisorBackoff, ExponentialBaseWithBoundedJitter) {
  SupervisorConfig config;
  config.backoff_ms = 100;
  config.backoff_factor = 2.0;
  config.backoff_cap_ms = 10'000;
  for (std::int64_t attempt = 0; attempt < 6; ++attempt) {
    const std::int64_t base = std::min<std::int64_t>(
        static_cast<std::int64_t>(100.0 * std::pow(2.0, attempt)), 10'000);
    const std::int64_t delay =
        supervisor::backoff_delay_ms(config, "pretrain", attempt);
    EXPECT_GE(delay, base) << "attempt " << attempt;
    EXPECT_LT(delay, base + config.backoff_ms) << "attempt " << attempt;
  }
}

TEST(SupervisorBackoff, CappedAtBackoffCap) {
  SupervisorConfig config;
  config.backoff_ms = 100;
  config.backoff_cap_ms = 300;
  const std::int64_t delay = supervisor::backoff_delay_ms(config, "s", 20);
  EXPECT_LT(delay, config.backoff_cap_ms + config.backoff_ms);
}

TEST(SupervisorBackoff, StagesDecorrelate) {
  // Same attempt, different stage names: the jitter should differ for at
  // least one of a handful of attempts (all-equal would mean the stage name
  // is ignored).
  SupervisorConfig config;
  bool any_different = false;
  for (std::int64_t attempt = 0; attempt < 8 && !any_different; ++attempt) {
    any_different = supervisor::backoff_delay_ms(config, "prune", attempt) !=
                    supervisor::backoff_delay_ms(config, "distill", attempt);
  }
  EXPECT_TRUE(any_different);
}

TEST(Supervisor, RetryUntilSuccess) {
  std::vector<std::int64_t> slept;
  SupervisorConfig config = fake_clock_config(&slept);
  config.retry_max = 5;
  int calls = 0;
  const StageReport report =
      supervisor::run_stage("flaky", config, [&] {
        if (++calls < 3) throw Error{ErrorKind::kTransientIo, "flake"};
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.timeouts, 0);
  // The recorded fake-clock sleeps must match the pure backoff schedule.
  ASSERT_EQ(slept.size(), 2U);
  EXPECT_EQ(slept[0], supervisor::backoff_delay_ms(config, "flaky", 0));
  EXPECT_EQ(slept[1], supervisor::backoff_delay_ms(config, "flaky", 1));
}

TEST(Supervisor, NonRetryableFailsFast) {
  std::vector<std::int64_t> slept;
  SupervisorConfig config = fake_clock_config(&slept);
  int calls = 0;
  EXPECT_THROW(supervisor::run_stage("doomed", config,
                                     [&] {
                                       ++calls;
                                       throw Error{ErrorKind::kFatal, "broken"};
                                     }),
               Error);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(Supervisor, ForeignExceptionsAreNotRetried) {
  std::vector<std::int64_t> slept;
  SupervisorConfig config = fake_clock_config(&slept);
  int calls = 0;
  EXPECT_THROW(supervisor::run_stage("foreign", config,
                                     [&] {
                                       ++calls;
                                       throw std::invalid_argument{"not ours"};
                                     }),
               std::invalid_argument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(Supervisor, RetriesExhaustedRethrowsLastError) {
  std::vector<std::int64_t> slept;
  SupervisorConfig config = fake_clock_config(&slept);
  config.retry_max = 2;
  int calls = 0;
  try {
    supervisor::run_stage("always-bad", config, [&] {
      ++calls;
      throw Error{ErrorKind::kTransientIo, "still down"};
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTransientIo);
  }
  EXPECT_EQ(calls, 3);  // first attempt + retry_max retries
  EXPECT_EQ(slept.size(), 2U);
}

TEST(Supervisor, SupervisedReturnsResult) {
  SupervisorConfig config;
  const int value =
      supervisor::supervised("answer", config, [] { return 42; });
  EXPECT_EQ(value, 42);
}

TEST(Supervisor, InlineExecutionWhenWatchdogDisabled) {
  // With deadline_ms == hang_ms == 0 the body runs on the caller's thread
  // and no watchdog machinery is armed.
  SupervisorConfig config;
  ASSERT_FALSE(config.watchdog_enabled());
  const auto caller = std::this_thread::get_id();
  supervisor::run_stage("inline", config, [&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    supervisor::heartbeat();  // must be a no-op, not a throw
    EXPECT_FALSE(supervisor::cancellation_requested());
  });
}

TEST(Supervisor, HeartbeatOutsideStageIsNoop) {
  EXPECT_NO_THROW(supervisor::heartbeat());
  EXPECT_FALSE(supervisor::cancellation_requested());
  // Bounded sleep fallback, not an infinite park.
  EXPECT_FALSE(supervisor::wait_for_cancellation(1ms));
}

TEST(Supervisor, DeadlineExpiryCancelsStage) {
  SupervisorConfig config;
  config.retry_max = 0;
  config.deadline_ms = 40;
  try {
    supervisor::run_stage("slow", config, [] {
      // Heartbeat frequently: deadline must fire even for a live stage.
      const auto failsafe = std::chrono::steady_clock::now() + 5s;
      while (std::chrono::steady_clock::now() < failsafe) {
        supervisor::heartbeat();
        std::this_thread::sleep_for(1ms);
      }
      FAIL() << "watchdog never cancelled the stage";
    });
    FAIL() << "expected timeout Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTimeout);
    EXPECT_NE(std::string{e.what()}.find("deadline"), std::string::npos);
  }
}

TEST(Supervisor, WatchdogFiresOnStalledStageThenRetrySucceeds) {
  std::vector<std::int64_t> slept;
  SupervisorConfig config = fake_clock_config(&slept);
  config.retry_max = 1;
  config.hang_ms = 40;
  int calls = 0;
  const StageReport report = supervisor::run_stage("stall", config, [&] {
    if (++calls == 1) {
      // Simulate a hang the way the fault injector does: park silently until
      // the watchdog notices the missing heartbeats.
      const bool cancelled = supervisor::wait_for_cancellation(5s);
      EXPECT_TRUE(cancelled);
      supervisor::heartbeat();  // observes the cancellation and throws
      FAIL() << "heartbeat did not observe cancellation";
    }
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.timeouts, 1);
}

TEST(Supervisor, HeartbeatsKeepHangWatchdogQuiet) {
  SupervisorConfig config;
  config.retry_max = 0;
  config.hang_ms = 60;
  int ticks = 0;
  const StageReport report = supervisor::run_stage("live", config, [&] {
    // Run well past hang_ms total, heartbeating every ~2ms: never cancelled.
    for (; ticks < 60; ++ticks) {
      supervisor::heartbeat();
      std::this_thread::sleep_for(2ms);
    }
  });
  EXPECT_EQ(ticks, 60);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.timeouts, 0);
}

TEST(Supervisor, NestedStagesRestoreOuterContext) {
  SupervisorConfig config;
  supervisor::run_stage("outer", config, [&] {
    supervisor::heartbeat();
    supervisor::run_stage("inner", config, [&] { supervisor::heartbeat(); });
    // Back on the outer stage: liveness API still functional, no cancel.
    supervisor::heartbeat();
    EXPECT_FALSE(supervisor::cancellation_requested());
  });
  EXPECT_NO_THROW(supervisor::heartbeat());
}

TEST(Supervisor, FromEnvDefaults) {
  // Guard against accidental default drift; env overrides are covered by the
  // fault-soak script which exports the SDD_* knobs.
  const SupervisorConfig config = SupervisorConfig::from_env();
  EXPECT_EQ(config.retry_max, 3);
  EXPECT_EQ(config.backoff_ms, 100);
  EXPECT_EQ(config.deadline_ms, 0);
  EXPECT_EQ(config.hang_ms, 0);
  EXPECT_FALSE(config.watchdog_enabled());
}

}  // namespace
}  // namespace sdd
