// Unit and gradient-check tests for the tensor/autograd layer.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace sdd {
namespace {

using testing::expect_gradients_close;

TEST(Tensor, ConstructionAndShape) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3U);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_FALSE(t.requires_grad());
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_THROW(Tensor::from_data({1.0F, 2.0F}, {3}), std::invalid_argument);
  Tensor t = Tensor::from_data({1.0F, 2.0F, 3.0F}, {3});
  EXPECT_EQ(t.data()[2], 3.0F);
}

TEST(Tensor, ItemRequiresScalar) {
  Tensor t = Tensor::zeros({2});
  EXPECT_THROW((void)t.item(), std::logic_error);
  EXPECT_EQ(Tensor::full({1}, 5.0F).item(), 5.0F);
}

TEST(Tensor, DetachDropsHistoryAndGrad) {
  Tensor a = Tensor::full({2}, 2.0F, /*requires_grad=*/true);
  Tensor b = ops::scale(a, 3.0F);
  Tensor d = b.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.data()[0], 6.0F);
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor a = Tensor::full({2}, 1.0F, /*requires_grad=*/true);
  Tensor b = ops::scale(a, 2.0F);
  EXPECT_THROW(b.backward(), std::logic_error);
}

TEST(Tensor, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::full({2}, 1.0F, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    Tensor b = ops::scale(a, 2.0F);
    EXPECT_FALSE(b.requires_grad());
  }
  Tensor c = ops::scale(a, 2.0F);
  EXPECT_TRUE(c.requires_grad());
}

TEST(Tensor, GradAccumulatesAcrossUses) {
  Tensor a = Tensor::full({1}, 3.0F, /*requires_grad=*/true);
  // loss = a*a: grad should be 2a = 6 via two uses of `a`.
  Tensor loss = ops::mul(a, a);
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 6.0F, 1e-5F);
}

TEST(Ops, AddScaledForward) {
  Tensor a = Tensor::from_data({1, 2, 3}, {3});
  Tensor b = Tensor::from_data({4, 5, 6}, {3});
  Tensor c = ops::add_scaled(a, b, 0.5F);
  EXPECT_FLOAT_EQ(c.data()[0], 3.0F);
  EXPECT_FLOAT_EQ(c.data()[2], 6.0F);
}

TEST(Ops, MatmulMatchesManual) {
  Tensor a = Tensor::from_data({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_data({5, 6, 7, 8}, {2, 2});
  Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.data()[0], 19.0F);
  EXPECT_FLOAT_EQ(c.data()[1], 22.0F);
  EXPECT_FLOAT_EQ(c.data()[2], 43.0F);
  EXPECT_FLOAT_EQ(c.data()[3], 50.0F);
}

TEST(Ops, MatmulShapeValidation) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 2});
  EXPECT_THROW(ops::matmul(a, b), std::invalid_argument);
}

TEST(Ops, LinearMatchesMatmul) {
  Rng rng{1};
  Tensor x = Tensor::randn(rng, {4, 6}, 1.0F);
  Tensor w = Tensor::randn(rng, {5, 6}, 1.0F);
  Tensor y = ops::linear(x, w);
  ASSERT_EQ(y.shape(), (Shape{4, 5}));
  // y[i,j] = dot(x[i], w[j])
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      float expected = 0.0F;
      for (int k = 0; k < 6; ++k) expected += x.data()[i * 6 + k] * w.data()[j * 6 + k];
      EXPECT_NEAR(y.data()[i * 5 + j], expected, 1e-4F);
    }
  }
}

TEST(Ops, LinearBias) {
  Tensor x = Tensor::from_data({1, 0, 0, 1}, {2, 2});
  Tensor w = Tensor::from_data({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::from_data({10, 20}, {2});
  Tensor y = ops::linear(x, w, b);
  EXPECT_FLOAT_EQ(y.data()[0], 11.0F);
  EXPECT_FLOAT_EQ(y.data()[1], 23.0F);
}

TEST(Ops, EmbeddingLookupAndScatterGrad) {
  Tensor table = Tensor::from_data({1, 2, 3, 4, 5, 6}, {3, 2}, /*requires_grad=*/true);
  Tensor out = ops::embedding({2, 0, 2}, table, {3});
  EXPECT_FLOAT_EQ(out.data()[0], 5.0F);
  EXPECT_FLOAT_EQ(out.data()[2], 1.0F);
  Tensor loss = ops::sum(out);
  loss.backward();
  // Row 2 used twice, row 0 once, row 1 never.
  EXPECT_FLOAT_EQ(table.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(table.grad()[2], 0.0F);
  EXPECT_FLOAT_EQ(table.grad()[4], 2.0F);
}

TEST(Ops, EmbeddingRejectsBadIds) {
  Tensor table = Tensor::zeros({3, 2});
  EXPECT_THROW(ops::embedding({3}, table, {1}), std::invalid_argument);
}

TEST(Ops, RmsNormUnitScale) {
  // With unit gain, each row should have RMS ~= 1 after normalization.
  Rng rng{2};
  Tensor x = Tensor::randn(rng, {3, 8}, 2.0F);
  Tensor w = Tensor::full({8}, 1.0F);
  Tensor y = ops::rmsnorm(x, w);
  for (int r = 0; r < 3; ++r) {
    double ms = 0.0;
    for (int c = 0; c < 8; ++c) {
      ms += static_cast<double>(y.data()[r * 8 + c]) * y.data()[r * 8 + c];
    }
    EXPECT_NEAR(std::sqrt(ms / 8.0), 1.0, 1e-3);
  }
}

TEST(Ops, SwigluForward) {
  Tensor g = Tensor::from_data({0.0F, 1.0F}, {2});
  Tensor u = Tensor::from_data({3.0F, 3.0F}, {2});
  Tensor y = ops::swiglu(g, u);
  EXPECT_NEAR(y.data()[0], 0.0F, 1e-6F);  // silu(0) = 0
  EXPECT_NEAR(y.data()[1], 3.0F / (1.0F + std::exp(-1.0F)), 1e-5F);
}

TEST(Ops, CrossEntropyUniformLogits) {
  // Uniform logits: loss = log(V).
  Tensor logits = Tensor::zeros({2, 10});
  const std::vector<std::int32_t> targets{3, 7};
  const std::vector<float> weights{1.0F, 1.0F};
  Tensor loss = ops::cross_entropy(logits, targets, weights);
  EXPECT_NEAR(loss.item(), std::log(10.0F), 1e-5F);
}

TEST(Ops, CrossEntropyMaskIgnoresRows) {
  Tensor logits = Tensor::from_data({5, 0, 0, /*row1:*/ 0, 0, 5}, {2, 3});
  // Row 1 masked: loss = nll of row 0 target 0 only.
  Tensor loss =
      ops::cross_entropy(logits, std::vector<std::int32_t>{0, 0},
                         std::vector<float>{1.0F, 0.0F});
  const float p = std::exp(5.0F) / (std::exp(5.0F) + 2.0F);
  EXPECT_NEAR(loss.item(), -std::log(p), 1e-4F);
}

TEST(Ops, CrossEntropyAllMaskedThrows) {
  Tensor logits = Tensor::zeros({1, 3});
  EXPECT_THROW(ops::cross_entropy(logits, std::vector<std::int32_t>{0},
                                  std::vector<float>{0.0F}),
               std::invalid_argument);
}

TEST(Ops, MeanAndSum) {
  Tensor a = Tensor::from_data({1, 2, 3, 4}, {4});
  EXPECT_FLOAT_EQ(ops::sum(a).item(), 10.0F);
  EXPECT_FLOAT_EQ(ops::mean(a).item(), 2.5F);
}

// ------------------------------ gradient checks ------------------------------

TEST(GradCheck, AddScaled) {
  Rng rng{10};
  Tensor a = Tensor::randn(rng, {2, 3}, 1.0F, true);
  Tensor b = Tensor::randn(rng, {2, 3}, 1.0F, true);
  const auto loss = [&] { return ops::mean(ops::mul(ops::add_scaled(a, b, 0.7F),
                                                    ops::add_scaled(a, b, 0.7F))); };
  expect_gradients_close(a, loss);
  expect_gradients_close(b, loss);
}

TEST(GradCheck, Mul) {
  Rng rng{11};
  Tensor a = Tensor::randn(rng, {6}, 1.0F, true);
  Tensor b = Tensor::randn(rng, {6}, 1.0F, true);
  const auto loss = [&] { return ops::sum(ops::mul(a, b)); };
  expect_gradients_close(a, loss);
}

TEST(GradCheck, Matmul) {
  Rng rng{12};
  Tensor a = Tensor::randn(rng, {3, 4}, 0.7F, true);
  Tensor b = Tensor::randn(rng, {4, 2}, 0.7F, true);
  const auto loss = [&] {
    Tensor c = ops::matmul(a, b);
    return ops::mean(ops::mul(c, c));
  };
  expect_gradients_close(a, loss);
  expect_gradients_close(b, loss);
}

TEST(GradCheck, LinearWithBias) {
  Rng rng{13};
  Tensor x = Tensor::randn(rng, {2, 3, 4}, 0.7F, true);
  Tensor w = Tensor::randn(rng, {5, 4}, 0.7F, true);
  Tensor b = Tensor::randn(rng, {5}, 0.7F, true);
  const auto loss = [&] {
    Tensor y = ops::linear(x, w, b);
    return ops::mean(ops::mul(y, y));
  };
  expect_gradients_close(x, loss);
  expect_gradients_close(w, loss);
  expect_gradients_close(b, loss);
}

TEST(GradCheck, RmsNorm) {
  Rng rng{14};
  Tensor x = Tensor::randn(rng, {3, 6}, 1.0F, true);
  Tensor w = Tensor::randn(rng, {6}, 0.5F, true);
  const auto loss = [&] {
    Tensor y = ops::rmsnorm(x, w);
    return ops::mean(ops::mul(y, y));
  };
  expect_gradients_close(x, loss);
  expect_gradients_close(w, loss);
}

TEST(GradCheck, Swiglu) {
  Rng rng{15};
  Tensor g = Tensor::randn(rng, {8}, 1.0F, true);
  Tensor u = Tensor::randn(rng, {8}, 1.0F, true);
  const auto loss = [&] { return ops::mean(ops::swiglu(g, u)); };
  expect_gradients_close(g, loss);
  expect_gradients_close(u, loss);
}

TEST(GradCheck, CausalSelfAttention) {
  Rng rng{16};
  const std::int64_t batch = 2, seq = 5, channels = 8, heads = 2;
  Tensor q = Tensor::randn(rng, {batch, seq, channels}, 0.8F, true);
  Tensor k = Tensor::randn(rng, {batch, seq, channels}, 0.8F, true);
  Tensor v = Tensor::randn(rng, {batch, seq, channels}, 0.8F, true);
  const auto loss = [&] {
    Tensor o = ops::causal_self_attention(q, k, v, heads, 10000.0F);
    return ops::mean(ops::mul(o, o));
  };
  expect_gradients_close(q, loss, 5e-3F);
  expect_gradients_close(k, loss, 5e-3F);
  expect_gradients_close(v, loss, 5e-3F);
}

TEST(GradCheck, CrossEntropy) {
  Rng rng{17};
  Tensor logits = Tensor::randn(rng, {4, 7}, 1.0F, true);
  const std::vector<std::int32_t> targets{1, 3, 0, 6};
  const std::vector<float> weights{1.0F, 0.0F, 2.0F, 1.0F};
  const auto loss = [&] { return ops::cross_entropy(logits, targets, weights); };
  expect_gradients_close(logits, loss, 5e-3F);
}

TEST(Attention, CausalityHoldsExactly) {
  // Changing a future token must not affect earlier outputs.
  Rng rng{18};
  const std::int64_t batch = 1, seq = 6, channels = 8;
  Tensor q = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  Tensor k = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  Tensor v = Tensor::randn(rng, {batch, seq, channels}, 1.0F);
  Tensor out1 = ops::causal_self_attention(q, k, v, 2, 10000.0F);

  // Perturb the last position of q, k, v.
  for (std::int64_t c = 0; c < channels; ++c) {
    q.data()[(seq - 1) * channels + c] += 5.0F;
    k.data()[(seq - 1) * channels + c] -= 3.0F;
    v.data()[(seq - 1) * channels + c] *= -2.0F;
  }
  Tensor out2 = ops::causal_self_attention(q, k, v, 2, 10000.0F);
  for (std::int64_t p = 0; p < seq - 1; ++p) {
    for (std::int64_t c = 0; c < channels; ++c) {
      EXPECT_FLOAT_EQ(out1.data()[p * channels + c], out2.data()[p * channels + c]);
    }
  }
}

}  // namespace
}  // namespace sdd
