// Tests for the optimizer, LR schedule, and the two training loops.
#include <cmath>

#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"
#include "train/trainer.hpp"

namespace sdd::train {
namespace {

TEST(AdamW, MinimizesQuadratic) {
  // f(x) = sum (x - 3)^2: AdamW should walk x toward 3.
  Tensor x = Tensor::full({4}, 0.0F, /*requires_grad=*/true);
  AdamWConfig config;
  config.lr = 0.1F;
  config.weight_decay = 0.0F;
  AdamW optimizer{{{"x", x}}, config};
  for (int step = 0; step < 300; ++step) {
    Tensor target = Tensor::full({4}, 3.0F);
    Tensor diff = ops::add_scaled(x, target, -1.0F);
    Tensor loss = ops::sum(ops::mul(diff, diff));
    optimizer.zero_grad();
    loss.backward();
    optimizer.step();
  }
  for (float v : x.data()) EXPECT_NEAR(v, 3.0F, 0.05F);
}

TEST(AdamW, FirstStepSizeIsLearningRate) {
  // With bias correction, |delta| of the very first step is ~lr regardless of
  // gradient magnitude.
  Tensor x = Tensor::full({1}, 5.0F, /*requires_grad=*/true);
  AdamWConfig config;
  config.lr = 0.25F;
  config.weight_decay = 0.0F;
  AdamW optimizer{{{"x", x}}, config};
  Tensor loss = ops::scale(x, 100.0F);  // grad = 100
  optimizer.zero_grad();
  loss.backward();
  optimizer.step();
  EXPECT_NEAR(x.data()[0], 5.0F - 0.25F, 1e-3F);
}

TEST(AdamW, WeightDecayShrinksWeights) {
  Tensor x = Tensor::full({1}, 10.0F, /*requires_grad=*/true);
  AdamWConfig config;
  config.lr = 0.1F;
  config.weight_decay = 0.5F;
  AdamW optimizer{{{"x", x}}, config};
  // Zero gradient: only decoupled decay acts.
  x.grad();  // allocate zero grad
  optimizer.step();
  EXPECT_NEAR(x.data()[0], 10.0F - 0.1F * 0.5F * 10.0F, 1e-4F);
}

TEST(AdamW, ClipGradientsScalesGlobalNorm) {
  Tensor x = Tensor::full({2}, 0.0F, /*requires_grad=*/true);
  AdamW optimizer{{{"x", x}}, {}};
  auto grad = x.grad();
  grad[0] = 3.0F;
  grad[1] = 4.0F;  // norm 5
  const float norm = optimizer.clip_gradients(1.0F);
  EXPECT_NEAR(norm, 5.0F, 1e-5F);
  EXPECT_NEAR(x.grad()[0], 0.6F, 1e-5F);
  EXPECT_NEAR(x.grad()[1], 0.8F, 1e-5F);
}

TEST(AdamW, ClipLeavesSmallGradientsAlone) {
  Tensor x = Tensor::full({1}, 0.0F, /*requires_grad=*/true);
  AdamW optimizer{{{"x", x}}, {}};
  x.grad()[0] = 0.5F;
  optimizer.clip_gradients(1.0F);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5F);
}

TEST(CosineLr, WarmupAndDecayShape) {
  const float base = 1.0F, min_lr = 0.1F;
  // Warmup ramps linearly.
  EXPECT_LT(cosine_lr(0, 100, 10, base, min_lr), base * 0.2F);
  EXPECT_FLOAT_EQ(cosine_lr(9, 100, 10, base, min_lr), base);
  // Midpoint of decay ~ (base+min)/2.
  EXPECT_NEAR(cosine_lr(55, 100, 10, base, min_lr), (base + min_lr) / 2.0F, 0.02F);
  // End of schedule = min_lr.
  EXPECT_NEAR(cosine_lr(100, 100, 10, base, min_lr), min_lr, 1e-5F);
  // Monotone decreasing after warmup.
  float previous = cosine_lr(10, 100, 10, base, min_lr);
  for (int step = 11; step <= 100; ++step) {
    const float lr = cosine_lr(step, 100, 10, base, min_lr);
    EXPECT_LE(lr, previous + 1e-6F);
    previous = lr;
  }
}

TEST(Pretrain, ReducesLoss) {
  const data::World world{42};
  data::CorpusConfig corpus;
  corpus.n_documents = 300;
  const auto stream = data::build_pretraining_stream(world, corpus);

  nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 3};
  PretrainConfig config;
  config.steps = 60;
  config.warmup_steps = 5;
  config.batch_size = 4;
  config.seq_len = 24;
  config.log_every = 0;
  const TrainStats stats = pretrain(model, stream, config);
  EXPECT_EQ(stats.losses.size(), 60U);
  EXPECT_LT(stats.final_loss, stats.initial_loss - 0.5F);
}

TEST(Sft, ReducesLossAndRespectsMask) {
  const data::World world{42};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 32, 5);

  nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 4};
  SftTrainConfig config;
  config.epochs = 20;
  config.max_steps = 60;
  config.batch_size = 4;
  const TrainStats stats = sft_train(model, dataset, config);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
}

TEST(Sft, LoraTrainingOnlyChangesAdapters) {
  const data::World world{42};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 16, 6);

  nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 5};
  const std::uint64_t base_embed_hash = [&] {
    const auto params = model.parameters();
    return model.weight_hash();
  }();
  model.attach_lora(nn::LoraConfig{.rank = 2, .alpha = 4.0F}, 11);

  SftTrainConfig config;
  config.epochs = 2;
  config.max_steps = 5;
  config.batch_size = 4;
  sft_train(model, dataset, config);

  // Base weights (embedding, attention W, norms) must be untouched; merging
  // back changes the weights.
  bool adapters_moved = false;
  for (const nn::NamedParam& p : model.trainable_parameters()) {
    for (float v : p.tensor.data()) {
      if (v != 0.0F) adapters_moved = true;
    }
  }
  EXPECT_TRUE(adapters_moved);
  model.merge_lora();
  EXPECT_NE(model.weight_hash(), base_embed_hash);
}

TEST(Sft, LossEvaluationIsDeterministic) {
  const data::World world{42};
  const data::SftDataset dataset = data::make_gsm8k_dataset(world, 12, 7);
  const nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 6};
  const float a = sft_loss(model, dataset, 12);
  const float b = sft_loss(model, dataset, 12);
  EXPECT_FLOAT_EQ(a, b);
  EXPECT_GT(a, 0.0F);
}

TEST(Sft, EmptyDatasetThrows) {
  nn::TransformerLM model{sdd::testing::tiny_real_vocab_config(2), 7};
  data::SftDataset dataset;
  EXPECT_THROW(sft_train(model, dataset, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sdd::train
