// Tests for RNG, hashing, serialization, thread pool, tables, and env config.
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace sdd {
namespace {

TEST(Rng, Deterministic) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng base{5};
  Rng child1 = base.fork(0);
  Rng child2 = base.fork(1);
  Rng child1_again = Rng{5}.fork(0);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformIntCoversEndpoints) {
  Rng rng{8};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, GaussianMoments) {
  Rng rng{9};
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{10};
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng{11};
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(std::span<const double>{weights}),
               std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{12};
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng{13};
  const auto sample = rng.sample_indices(20, 10);
  EXPECT_EQ(sample.size(), 10U);
  EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 10U);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Hash, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, HexFormat) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xDEADBEEFULL), "00000000deadbeef");
}

TEST(Serialize, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "sdd_serialize_test.bin";
  {
    BinaryWriter writer{path};
    writer.write_magic("TESTMAG1", 3);
    writer.write_i64(-42);
    writer.write_f32(1.5F);
    writer.write_string("hello world");
    writer.write_vector(std::vector<float>{1.0F, 2.0F, 3.0F});
    writer.write_bool(true);
    writer.flush();
  }
  BinaryReader reader{path};
  reader.expect_magic("TESTMAG1", 3);
  EXPECT_EQ(reader.read_i64(), -42);
  EXPECT_FLOAT_EQ(reader.read_f32(), 1.5F);
  EXPECT_EQ(reader.read_string(), "hello world");
  EXPECT_EQ(reader.read_vector<float>(), (std::vector<float>{1.0F, 2.0F, 3.0F}));
  EXPECT_TRUE(reader.read_bool());
  std::filesystem::remove(path);
}

TEST(Serialize, BadMagicThrows) {
  const auto path = std::filesystem::temp_directory_path() / "sdd_magic_test.bin";
  {
    BinaryWriter writer{path};
    writer.write_magic("GOODMAG1", 1);
    writer.flush();
  }
  BinaryReader reader{path};
  EXPECT_THROW(reader.expect_magic("OTHERMAG", 1), SerializeError);
  std::filesystem::remove(path);
}

TEST(Serialize, VersionMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "sdd_version_test.bin";
  {
    BinaryWriter writer{path};
    writer.write_magic("GOODMAG1", 1);
    writer.flush();
  }
  BinaryReader reader{path};
  EXPECT_THROW(reader.expect_magic("GOODMAG1", 2), SerializeError);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader{"/nonexistent/path/file.bin"}, SerializeError);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool{2};
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool{0};
  // hardware_concurrency()-1 may be 0 on this machine; either way the range
  // must be covered exactly once.
  std::vector<int> hits(17, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool{1};
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Table, AsciiAlignmentAndCells) {
  TablePrinter table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_separator();
  table.add_row({"b", "22"});
  const std::string ascii = table.to_ascii();
  EXPECT_NE(ascii.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(ascii.find("| b     | 22    |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  TablePrinter table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, MarkdownFormat) {
  TablePrinter table{{"x"}};
  table.add_row({"1"});
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("| x |"), std::string::npos);
  EXPECT_NE(md.find("|---|"), std::string::npos);
}

TEST(Table, FloatFormatting) {
  EXPECT_EQ(format_float(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.163, 2), "16.30%");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("SDD_TEST_INT", "42", 1);
  ::setenv("SDD_TEST_BAD", "xyz", 1);
  ::setenv("SDD_TEST_FLAG", "true", 1);
  EXPECT_EQ(env_int("SDD_TEST_INT", 7), 42);
  EXPECT_EQ(env_int("SDD_TEST_BAD", 7), 7);
  EXPECT_EQ(env_int("SDD_TEST_UNSET_NAME", 7), 7);
  EXPECT_TRUE(env_flag("SDD_TEST_FLAG", false));
  EXPECT_EQ(env_string("SDD_TEST_INT", ""), "42");
  ::unsetenv("SDD_TEST_INT");
  ::unsetenv("SDD_TEST_BAD");
  ::unsetenv("SDD_TEST_FLAG");
}

}  // namespace
}  // namespace sdd
